#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geom/deployment.h"
#include "geom/grid_index.h"
#include "geom/vec2.h"
#include "util/rng.h"

namespace mcs {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ((a + b), (Vec2{4, -2}));
  EXPECT_EQ((a - b), (Vec2{-2, 6}));
  EXPECT_EQ((a * 2.0), (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(a.dot(b), 3 - 8);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist2({0, 0}, {3, 4}), 25.0);
}

class GridIndexParam : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GridIndexParam, MatchesBruteForce) {
  const auto [n, radius] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  const auto pts = deployUniformSquare(n, 2.0, rng);
  const GridIndex grid(pts, radius);
  for (int trial = 0; trial < 25; ++trial) {
    const Vec2 c{rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)};
    auto got = grid.ball(c, radius);
    std::vector<NodeId> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (dist(pts[i], c) <= radius) want.push_back(static_cast<NodeId>(i));
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridIndexParam,
                         ::testing::Combine(::testing::Values(1, 17, 200, 1000),
                                            ::testing::Values(0.05, 0.3, 1.0)));

TEST(GridIndex, EmptyInput) {
  const GridIndex grid(std::vector<Vec2>{}, 1.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.ball({0, 0}, 10.0).empty());
}

TEST(GridIndex, QueryOutsideBounds) {
  const std::vector<Vec2> pts{{0, 0}, {1, 1}};
  const GridIndex grid(pts, 0.5);
  EXPECT_TRUE(grid.ball({100, 100}, 0.4).empty());
  EXPECT_EQ(grid.ball({100, 100}, 200.0).size(), 2u);
}

/// Sorted ball answers for every point of a fixed probe set.
std::vector<std::vector<NodeId>> probeBalls(const GridIndex& grid, double radius) {
  std::vector<std::vector<NodeId>> out;
  const std::vector<Vec2> probes{{0.1, 0.1}, {1.0, 1.0}, {1.9, 0.3}, {0.5, 1.7}};
  for (const Vec2 c : probes) {
    auto ids = grid.ball(c, radius);
    std::sort(ids.begin(), ids.end());
    out.push_back(std::move(ids));
  }
  return out;
}

TEST(GridIndex, IncrementalUpdateMatchesRebuild) {
  // Bounded drift inside the original bounding box: the incremental path
  // must stay incremental (return true) and answer every query exactly
  // like a fresh rebuild over the same geometry, slot after slot.
  Rng rng(99);
  std::vector<Vec2> pts = deployUniformSquare(400, 2.0, rng);
  double loX = 1e30, loY = 1e30, hiX = -1e30, hiY = -1e30;
  for (const Vec2& p : pts) {
    loX = std::min(loX, p.x);
    loY = std::min(loY, p.y);
    hiX = std::max(hiX, p.x);
    hiY = std::max(hiY, p.y);
  }
  GridIndex incremental(pts, 0.3);
  GridIndex rebuilt(pts, 0.3);
  for (int slot = 0; slot < 40; ++slot) {
    for (Vec2& p : pts) {
      p.x = std::clamp(p.x + rng.uniform(-0.02, 0.02), loX, hiX);
      p.y = std::clamp(p.y + rng.uniform(-0.02, 0.02), loY, hiY);
    }
    EXPECT_TRUE(incremental.update(pts));
    rebuilt.rebuild(pts, 0.3);
    EXPECT_EQ(probeBalls(incremental, 0.3), probeBalls(rebuilt, 0.3)) << "slot " << slot;
    for (NodeId id = 0; id < 400; ++id) {
      EXPECT_EQ(incremental.point(id), pts[static_cast<std::size_t>(id)]);
    }
    // Id order within a cell is part of the contract (insertion order);
    // the incremental re-sort must preserve it like a rebuild does.
    incremental.forEachCell([](long, long, std::span<const NodeId> ids) {
      for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
    });
  }
}

TEST(GridIndex, UpdateFallsBackOutsideTheBox) {
  Rng rng(7);
  std::vector<Vec2> pts = deployUniformSquare(50, 1.0, rng);
  GridIndex grid(pts, 0.25);
  pts[13] = {5.0, 5.0};  // leaves the original bounding box
  EXPECT_FALSE(grid.update(pts));  // fallback: full rebuild, re-anchored
  auto got = grid.ball({5.0, 5.0}, 0.1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 13);

  // Size change also falls back (and stays correct).
  pts.push_back({0.5, 0.5});
  EXPECT_FALSE(grid.update(pts));
  EXPECT_EQ(grid.size(), 51u);
}

TEST(GridIndex, UpdateWithoutCellMovesIsAPositionRefresh) {
  // Sub-cell jitter: no point changes cells, but queries must see the
  // fresh positions (a point jittered out of a query ball disappears).
  const std::vector<Vec2> pts{{0.10, 0.10}, {0.90, 0.90}};
  GridIndex grid(pts, 1.0);
  std::vector<Vec2> moved = pts;
  moved[1] = {0.60, 0.60};  // same cell, different position
  EXPECT_TRUE(grid.update(moved));
  EXPECT_EQ(grid.ball({0.9, 0.9}, 0.05).size(), 0u);
  EXPECT_EQ(grid.ball({0.6, 0.6}, 0.05).size(), 1u);
}

TEST(Deploy, UniformSquareBounds) {
  Rng rng(1);
  const auto pts = deployUniformSquare(500, 3.0, rng);
  EXPECT_EQ(pts.size(), 500u);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 3.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 3.0);
  }
}

TEST(Deploy, UniformDiskBounds) {
  Rng rng(2);
  const auto pts = deployUniformDisk(500, 2.0, rng);
  for (const Vec2& p : pts) EXPECT_LE(p.norm(), 2.0 + 1e-12);
}

TEST(Deploy, UniformDiskRadialDistribution) {
  Rng rng(3);
  const auto pts = deployUniformDisk(20000, 1.0, rng);
  // Uniform over area: P(r <= 1/2) = 1/4.
  int inner = 0;
  for (const Vec2& p : pts) inner += p.norm() <= 0.5;
  EXPECT_NEAR(static_cast<double>(inner) / pts.size(), 0.25, 0.02);
}

TEST(Deploy, PerturbedGridCount) {
  Rng rng(4);
  const auto pts = deployPerturbedGrid(300, 2.0, 0.3, rng);
  EXPECT_EQ(pts.size(), 300u);
}

TEST(Deploy, ClusteredAroundCenters) {
  Rng rng(5);
  const auto pts = deployClustered(1000, 5, 10.0, 0.1, rng);
  EXPECT_EQ(pts.size(), 1000u);
}

TEST(Deploy, CorridorBounds) {
  Rng rng(6);
  const auto pts = deployCorridor(200, 8.0, 0.5, rng);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 8.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 0.5);
  }
}

TEST(Deploy, ExponentialChainGapsGrow) {
  const auto pts = deployExponentialChain(10, 2.0, 0.4);
  ASSERT_EQ(pts.size(), 10u);
  double prevGap = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double gap = pts[i].x - pts[i - 1].x;
    EXPECT_GT(gap, prevGap);
    prevGap = gap;
  }
  // Largest gap normalized to maxGap.
  EXPECT_NEAR(pts[9].x - pts[8].x, 0.4, 1e-12);
  for (const Vec2& p : pts) EXPECT_EQ(p.y, 0.0);
}

TEST(Deploy, ExponentialChainBaseControlsRatio) {
  const auto pts = deployExponentialChain(6, 3.0, 1.0);
  for (std::size_t i = 2; i < pts.size(); ++i) {
    const double g1 = pts[i].x - pts[i - 1].x;
    const double g0 = pts[i - 1].x - pts[i - 2].x;
    EXPECT_NEAR(g1 / g0, 3.0, 1e-9);
  }
}

TEST(Deploy, DedupePositions) {
  Rng rng(7);
  std::vector<Vec2> pts{{0, 0}, {0, 0}, {0, 0}, {1, 1}};
  const auto fixed = dedupePositions(pts, 1e-6, rng);
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    for (std::size_t j = i + 1; j < fixed.size(); ++j) {
      EXPECT_GT(dist(fixed[i], fixed[j]), 0.0);
    }
  }
}

}  // namespace
}  // namespace mcs
