#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/deployment.h"
#include "geom/grid_index.h"
#include "geom/hier_grid.h"
#include "geom/vec2.h"
#include "util/rng.h"

namespace mcs {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ((a + b), (Vec2{4, -2}));
  EXPECT_EQ((a - b), (Vec2{-2, 6}));
  EXPECT_EQ((a * 2.0), (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(a.dot(b), 3 - 8);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist2({0, 0}, {3, 4}), 25.0);
}

class GridIndexParam : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GridIndexParam, MatchesBruteForce) {
  const auto [n, radius] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  const auto pts = deployUniformSquare(n, 2.0, rng);
  const GridIndex grid(pts, radius);
  for (int trial = 0; trial < 25; ++trial) {
    const Vec2 c{rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)};
    auto got = grid.ball(c, radius);
    std::vector<NodeId> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (dist(pts[i], c) <= radius) want.push_back(static_cast<NodeId>(i));
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridIndexParam,
                         ::testing::Combine(::testing::Values(1, 17, 200, 1000),
                                            ::testing::Values(0.05, 0.3, 1.0)));

TEST(GridIndex, EmptyInput) {
  const GridIndex grid(std::vector<Vec2>{}, 1.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.ball({0, 0}, 10.0).empty());
}

TEST(GridIndex, QueryOutsideBounds) {
  const std::vector<Vec2> pts{{0, 0}, {1, 1}};
  const GridIndex grid(pts, 0.5);
  EXPECT_TRUE(grid.ball({100, 100}, 0.4).empty());
  EXPECT_EQ(grid.ball({100, 100}, 200.0).size(), 2u);
}

/// Sorted ball answers for every point of a fixed probe set.
std::vector<std::vector<NodeId>> probeBalls(const GridIndex& grid, double radius) {
  std::vector<std::vector<NodeId>> out;
  const std::vector<Vec2> probes{{0.1, 0.1}, {1.0, 1.0}, {1.9, 0.3}, {0.5, 1.7}};
  for (const Vec2 c : probes) {
    auto ids = grid.ball(c, radius);
    std::sort(ids.begin(), ids.end());
    out.push_back(std::move(ids));
  }
  return out;
}

TEST(GridIndex, IncrementalUpdateMatchesRebuild) {
  // Bounded drift inside the original bounding box: the incremental path
  // must stay incremental (return true) and answer every query exactly
  // like a fresh rebuild over the same geometry, slot after slot.
  Rng rng(99);
  std::vector<Vec2> pts = deployUniformSquare(400, 2.0, rng);
  double loX = 1e30, loY = 1e30, hiX = -1e30, hiY = -1e30;
  for (const Vec2& p : pts) {
    loX = std::min(loX, p.x);
    loY = std::min(loY, p.y);
    hiX = std::max(hiX, p.x);
    hiY = std::max(hiY, p.y);
  }
  GridIndex incremental(pts, 0.3);
  GridIndex rebuilt(pts, 0.3);
  for (int slot = 0; slot < 40; ++slot) {
    for (Vec2& p : pts) {
      p.x = std::clamp(p.x + rng.uniform(-0.02, 0.02), loX, hiX);
      p.y = std::clamp(p.y + rng.uniform(-0.02, 0.02), loY, hiY);
    }
    EXPECT_TRUE(incremental.update(pts));
    rebuilt.rebuild(pts, 0.3);
    EXPECT_EQ(probeBalls(incremental, 0.3), probeBalls(rebuilt, 0.3)) << "slot " << slot;
    for (NodeId id = 0; id < 400; ++id) {
      EXPECT_EQ(incremental.point(id), pts[static_cast<std::size_t>(id)]);
    }
    // Id order within a cell is part of the contract (insertion order);
    // the incremental re-sort must preserve it like a rebuild does.
    incremental.forEachCell([](long, long, std::span<const NodeId> ids) {
      for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
    });
  }
}

TEST(GridIndex, UpdateFallsBackOutsideTheBox) {
  Rng rng(7);
  std::vector<Vec2> pts = deployUniformSquare(50, 1.0, rng);
  GridIndex grid(pts, 0.25);
  pts[13] = {5.0, 5.0};  // leaves the original bounding box
  EXPECT_FALSE(grid.update(pts));  // fallback: full rebuild, re-anchored
  auto got = grid.ball({5.0, 5.0}, 0.1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 13);

  // Size change also falls back (and stays correct).
  pts.push_back({0.5, 0.5});
  EXPECT_FALSE(grid.update(pts));
  EXPECT_EQ(grid.size(), 51u);
}

TEST(GridIndex, FuzzAdversarialMotionMatchesFullRebuild) {
  // Randomized adversarial motion over many steps: a mix of sub-cell
  // jitter, multi-cell jumps, teleports to the box corners, and
  // occasional out-of-box excursions that force the rebuild fallback.
  // After every step, ball queries against a fresh rebuild over the same
  // points must agree exactly (as sorted id sets — after a fallback
  // re-anchors the box, cell partitions and hence iteration order may
  // legitimately differ).
  Rng rng(1234);
  const int n = 300;
  std::vector<Vec2> pts = deployUniformSquare(n, 4.0, rng);
  GridIndex incremental(pts, 0.35);

  const auto queryBoth = [&](const GridIndex& fresh) {
    for (int q = 0; q < 20; ++q) {
      const Vec2 c{rng.uniform(-1.0, 5.0), rng.uniform(-1.0, 5.0)};
      const double radius = rng.uniform(0.05, 1.5);
      auto a = incremental.ball(c, radius);
      auto b = fresh.ball(c, radius);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "center (" << c.x << ", " << c.y << ") radius " << radius;
    }
  };

  int fallbacks = 0;
  for (int step = 0; step < 60; ++step) {
    const int kind = step % 6;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      Vec2& p = pts[i];
      switch (kind) {
        case 0:  // sub-cell jitter
          p.x += rng.uniform(-0.01, 0.01);
          p.y += rng.uniform(-0.01, 0.01);
          break;
        case 1:  // multi-cell jumps for a third of the points
          if (i % 3 == 0) {
            p.x += rng.uniform(-1.2, 1.2);
            p.y += rng.uniform(-1.2, 1.2);
          }
          break;
        case 2:  // teleport a few points onto the corners (cell pile-up)
          if (i % 37 == 0) p = {rng.bernoulli(0.5) ? 0.0 : 4.0, rng.bernoulli(0.5) ? 0.0 : 4.0};
          break;
        case 3:  // shear: everything drifts the same direction
          p.x += 0.05;
          break;
        case 4:  // full scramble within the field
          p = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
          break;
        default:  // out-of-box excursion: must force the rebuild fallback
          if (i == static_cast<std::size_t>(step) % pts.size()) {
            p = {6.0 + rng.uniform(0.0, 1.0), -2.0 - rng.uniform(0.0, 1.0)};
          }
          break;
      }
      // Clamp the non-excursion kinds inside a loose box so steps 0-4
      // keep exercising the incremental path rather than the fallback.
      if (kind != 5) {
        p.x = std::clamp(p.x, 0.0, 4.0);
        p.y = std::clamp(p.y, 0.0, 4.0);
      }
    }
    const bool incrementalPath = incremental.update(pts);
    if (!incrementalPath) ++fallbacks;
    const GridIndex fresh(pts, 0.35);
    queryBoth(fresh);
    // Positions must always reflect the new point set, whichever path ran.
    for (NodeId id = 0; id < n; ++id) {
      ASSERT_EQ(incremental.point(id), pts[static_cast<std::size_t>(id)]) << "step " << step;
    }
  }
  // The excursion steps leave the original bounding box, so the fallback
  // must actually have been exercised (and only the excursion steps plus
  // the post-excursion re-anchored steps may fall back).
  EXPECT_GE(fallbacks, 5);
}

// ---------------------------------------------------------------------------
// HierGrid: the far-field pyramid
// ---------------------------------------------------------------------------

/// Builds a HierGrid over the occupied cells of a GridIndex, mirroring
/// how Medium::buildFields feeds it (cell sums + a ref per base cell).
HierGrid buildHier(const GridIndex& grid, std::vector<std::span<const NodeId>>& cellIds) {
  std::vector<HierBaseCell> base;
  cellIds.clear();
  grid.forEachCell([&](long cx, long cy, std::span<const NodeId> ids) {
    Vec2 sum{};
    for (const NodeId id : ids) sum = sum + grid.point(id);
    base.push_back({cx, cy, sum.x, sum.y, static_cast<std::int64_t>(ids.size()),
                    static_cast<std::int32_t>(cellIds.size())});
    cellIds.push_back(ids);
  });
  HierGrid hier;
  hier.build(grid.minX(), grid.minY(), grid.cellSize(), grid.nxCells(), grid.nyCells(), base);
  return hier;
}

TEST(HierGrid, EveryPointSurfacesExactlyOnce) {
  // Conservation: for any query point, the counts reported by far()
  // batches plus the members of near() cells partition the point set.
  Rng rng(5);
  const int n = 500;
  const std::vector<Vec2> pts = deployUniformSquare(n, 6.0, rng);
  const GridIndex grid(pts, 0.5);
  std::vector<std::span<const NodeId>> cellIds;
  const HierGrid hier = buildHier(grid, cellIds);
  EXPECT_EQ(hier.totalCount(), n);
  EXPECT_GT(hier.levels(), 2);

  for (int q = 0; q < 30; ++q) {
    const Vec2 p{rng.uniform(-1.0, 7.0), rng.uniform(-1.0, 7.0)};
    std::int64_t farCount = 0;
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    hier.forEachField(
        p, 1.0, 0.5,
        [&](std::int64_t count, Vec2, int, long, long) { farCount += count; },
        [&](std::int32_t ref) {
          for (const NodeId id : cellIds[static_cast<std::size_t>(ref)]) {
            ASSERT_EQ(seen[static_cast<std::size_t>(id)], 0) << "duplicate near member";
            seen[static_cast<std::size_t>(id)] = 1;
          }
        });
    std::int64_t nearCount = 0;
    for (const char s : seen) nearCount += s;
    EXPECT_EQ(farCount + nearCount, n) << "query " << q;
  }
}

TEST(HierGrid, NearBallAlwaysResolvesExactly) {
  // No admissible (batched) cell may contain a point within the near
  // radius of the query — the guarantee that every decodable transmitter
  // reaches the exact summation path in Medium.
  Rng rng(9);
  const int n = 400;
  const std::vector<Vec2> pts = deployUniformSquare(n, 5.0, rng);
  const GridIndex grid(pts, 0.5);
  std::vector<std::span<const NodeId>> cellIds;
  const HierGrid hier = buildHier(grid, cellIds);

  const double nearRadius = 1.0;
  for (int q = 0; q < 30; ++q) {
    const Vec2 p{rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)};
    std::vector<char> nearMember(static_cast<std::size_t>(n), 0);
    hier.forEachField(
        p, nearRadius, 0.5, [&](std::int64_t, Vec2, int, long, long) {},
        [&](std::int32_t ref) {
          for (const NodeId id : cellIds[static_cast<std::size_t>(ref)]) {
            nearMember[static_cast<std::size_t>(id)] = 1;
          }
        });
    for (int id = 0; id < n; ++id) {
      if (dist2(pts[static_cast<std::size_t>(id)], p) <= nearRadius * nearRadius) {
        EXPECT_TRUE(nearMember[static_cast<std::size_t>(id)])
            << "point " << id << " inside the near ball was batched";
      }
    }
  }
}

TEST(HierGrid, AdmissibleBatchesRespectTheThetaRule) {
  // Every far() callback must satisfy the admissibility inequality:
  // the emitting cell's side over its box distance is at most theta.
  Rng rng(31);
  const std::vector<Vec2> pts = deployUniformSquare(600, 8.0, rng);
  const GridIndex grid(pts, 0.5);
  std::vector<std::span<const NodeId>> cellIds;
  const HierGrid hier = buildHier(grid, cellIds);

  for (const double theta : {0.25, 0.5, 1.0}) {
    const Vec2 p{4.0, 4.0};
    hier.forEachField(
        p, 1.0, theta,
        [&](std::int64_t count, Vec2 centroid, int level, long, long) {
          ASSERT_GT(count, 0);
          const double cellSide = grid.cellSize() * std::pow(2.0, level);
          const double d = std::sqrt(dist2(centroid, p));
          // The box distance is <= the centroid distance, so this is a
          // weaker-but-sufficient check of side <= theta * boxDist:
          // side / theta <= boxDist <= d + diagonal slack.
          EXPECT_LE(cellSide / theta, d + cellSide * std::sqrt(2.0))
              << "level " << level << " theta " << theta;
        },
        [](std::int32_t) {});
  }
}

TEST(HierGrid, EmptyAndSingleCellInputs) {
  HierGrid hier;
  hier.build(0.0, 0.0, 1.0, 0, 0, {});
  EXPECT_TRUE(hier.empty());
  int visits = 0;
  hier.forEachField(
      {0, 0}, 1.0, 0.5, [&](std::int64_t, Vec2, int, long, long) { ++visits; },
      [&](std::int32_t) { ++visits; });
  EXPECT_EQ(visits, 0);

  const std::vector<HierBaseCell> one{{0, 0, 0.5, 0.5, 1, 0}};
  hier.build(0.0, 0.0, 1.0, 1, 1, one);
  EXPECT_FALSE(hier.empty());
  EXPECT_EQ(hier.levels(), 1);
  EXPECT_EQ(hier.totalCount(), 1);
  // Far query: the single cell batches.
  Vec2 gotCentroid{};
  hier.forEachField(
      {100.0, 0.0}, 1.0, 0.5,
      [&](std::int64_t count, Vec2 centroid, int, long, long) {
        EXPECT_EQ(count, 1);
        gotCentroid = centroid;
        ++visits;
      },
      [&](std::int32_t) { FAIL() << "distant cell must batch"; });
  EXPECT_EQ(visits, 1);
  EXPECT_DOUBLE_EQ(gotCentroid.x, 0.5);
  // Near query: the same cell resolves exactly.
  hier.forEachField(
      {0.5, 0.5}, 1.0, 0.5,
      [](std::int64_t, Vec2, int, long, long) { FAIL() << "touching cell must open"; },
      [&](std::int32_t ref) { EXPECT_EQ(ref, 0); });
}

TEST(GridIndex, UpdateWithoutCellMovesIsAPositionRefresh) {
  // Sub-cell jitter: no point changes cells, but queries must see the
  // fresh positions (a point jittered out of a query ball disappears).
  const std::vector<Vec2> pts{{0.10, 0.10}, {0.90, 0.90}};
  GridIndex grid(pts, 1.0);
  std::vector<Vec2> moved = pts;
  moved[1] = {0.60, 0.60};  // same cell, different position
  EXPECT_TRUE(grid.update(moved));
  EXPECT_EQ(grid.ball({0.9, 0.9}, 0.05).size(), 0u);
  EXPECT_EQ(grid.ball({0.6, 0.6}, 0.05).size(), 1u);
}

TEST(Deploy, UniformSquareBounds) {
  Rng rng(1);
  const auto pts = deployUniformSquare(500, 3.0, rng);
  EXPECT_EQ(pts.size(), 500u);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 3.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 3.0);
  }
}

TEST(Deploy, UniformDiskBounds) {
  Rng rng(2);
  const auto pts = deployUniformDisk(500, 2.0, rng);
  for (const Vec2& p : pts) EXPECT_LE(p.norm(), 2.0 + 1e-12);
}

TEST(Deploy, UniformDiskRadialDistribution) {
  Rng rng(3);
  const auto pts = deployUniformDisk(20000, 1.0, rng);
  // Uniform over area: P(r <= 1/2) = 1/4.
  int inner = 0;
  for (const Vec2& p : pts) inner += p.norm() <= 0.5;
  EXPECT_NEAR(static_cast<double>(inner) / pts.size(), 0.25, 0.02);
}

TEST(Deploy, PerturbedGridCount) {
  Rng rng(4);
  const auto pts = deployPerturbedGrid(300, 2.0, 0.3, rng);
  EXPECT_EQ(pts.size(), 300u);
}

TEST(Deploy, ClusteredAroundCenters) {
  Rng rng(5);
  const auto pts = deployClustered(1000, 5, 10.0, 0.1, rng);
  EXPECT_EQ(pts.size(), 1000u);
}

TEST(Deploy, CorridorBounds) {
  Rng rng(6);
  const auto pts = deployCorridor(200, 8.0, 0.5, rng);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 8.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 0.5);
  }
}

TEST(Deploy, ExponentialChainGapsGrow) {
  const auto pts = deployExponentialChain(10, 2.0, 0.4);
  ASSERT_EQ(pts.size(), 10u);
  double prevGap = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double gap = pts[i].x - pts[i - 1].x;
    EXPECT_GT(gap, prevGap);
    prevGap = gap;
  }
  // Largest gap normalized to maxGap.
  EXPECT_NEAR(pts[9].x - pts[8].x, 0.4, 1e-12);
  for (const Vec2& p : pts) EXPECT_EQ(p.y, 0.0);
}

TEST(Deploy, ExponentialChainBaseControlsRatio) {
  const auto pts = deployExponentialChain(6, 3.0, 1.0);
  for (std::size_t i = 2; i < pts.size(); ++i) {
    const double g1 = pts[i].x - pts[i - 1].x;
    const double g0 = pts[i - 1].x - pts[i - 2].x;
    EXPECT_NEAR(g1 / g0, 3.0, 1e-9);
  }
}

TEST(Deploy, DedupePositions) {
  Rng rng(7);
  std::vector<Vec2> pts{{0, 0}, {0, 0}, {0, 0}, {1, 1}};
  const auto fixed = dedupePositions(pts, 1e-6, rng);
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    for (std::size_t j = i + 1; j < fixed.size(); ++j) {
      EXPECT_GT(dist(fixed[i], fixed[j]), 0.0);
    }
  }
}

}  // namespace
}  // namespace mcs
