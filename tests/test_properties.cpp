#include <gtest/gtest.h>

#include "test_support.h"

/// Cross-cutting property sweeps: the full pipeline on varied topologies,
/// channel counts, SINR parameters, and seeds.
namespace mcs {
namespace {

enum class Topology { Uniform, Corridor, Grid, Clustered };

std::vector<Vec2> deploy(Topology t, int n, Rng& rng) {
  switch (t) {
    case Topology::Uniform: return deployUniformSquare(n, 1.2, rng);
    case Topology::Corridor: return deployCorridor(n, 3.0, 0.4, rng);
    case Topology::Grid: return deployPerturbedGrid(n, 1.3, 0.3, rng);
    case Topology::Clustered: return deployClustered(n, 4, 1.0, 0.12, rng);
  }
  return {};
}

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<Topology, int, std::uint64_t>> {};

TEST_P(PipelineSweep, AggregationAndColoringHold) {
  const auto [topology, channels, seed] = GetParam();
  Rng rng(seed);
  auto pts = deploy(topology, 300, rng);
  Network net(std::move(pts), SinrParams{});
  if (!net.graph().connected()) GTEST_SKIP() << "disconnected instance";
  Simulator sim(net, channels, seed + 1000);
  const AggregationStructure s = buildStructure(sim);

  // Structure invariants.
  for (NodeId v = 0; v < net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    ASSERT_NE(s.clustering.dominatorOf[vi], kNoNode);
    ASSERT_LE(net.distance(v, s.clustering.dominatorOf[vi]), 2 * net.rc() + 1e-12);
  }
  EXPECT_LE(test::colorSeparationViolations(net, s.clustering), 1);

  // Aggregation.
  std::vector<double> values(static_cast<std::size_t>(net.size()));
  for (double& x : values) x = rng.uniform(0, 1);
  const AggregateRun run = runAggregation(sim, s, values, AggKind::Max);
  EXPECT_TRUE(run.delivered);

  // Coloring.
  const ColoringResult col = runColoring(sim, s);
  EXPECT_TRUE(col.complete);
  EXPECT_EQ(countColoringViolations(net, col.colorOf), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweep,
    ::testing::Combine(::testing::Values(Topology::Uniform, Topology::Corridor,
                                         Topology::Grid),
                       ::testing::Values(1, 8), ::testing::Values(1u, 2u)));

class SinrParamSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SinrParamSweep, AggregationWorksAcrossPhysicalParameters) {
  const auto [alpha, beta] = GetParam();
  SinrParams params;
  params.alpha = alpha;
  params.beta = beta;
  params = params.withRange(1.0);
  Rng rng(alpha * 100 + beta * 10);
  auto pts = deployUniformSquare(250, 1.1, rng);
  Network net(std::move(pts), params);
  if (!net.graph().connected()) GTEST_SKIP();
  Simulator sim(net, 4, 99);
  std::vector<double> values(static_cast<std::size_t>(net.size()));
  for (double& x : values) x = rng.uniform(0, 1);
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Max);
  EXPECT_TRUE(run.delivered) << "alpha=" << alpha << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SinrParamSweep,
                         ::testing::Combine(::testing::Values(2.5, 3.0, 4.0),
                                            ::testing::Values(1.2, 2.0)));

TEST(Properties, TuningLnRounds) {
  Tuning tun;
  EXPECT_GE(tun.lnRounds(1.0, 2), 1);
  EXPECT_EQ(tun.lnRounds(0.0, 100, 5), 5);
  // Scales linearly with gamma and lnFactor.
  const int base = tun.lnRounds(2.0, 1000);
  tun.lnFactor = 2.0;
  EXPECT_EQ(tun.lnRounds(1.0, 1000), base);
}

TEST(Properties, PaperStrictPreservesStructure) {
  const Tuning strict = Tuning::paperStrict();
  EXPECT_EQ(strict.csaOmega1, 36.0);
  EXPECT_EQ(strict.c1, 24.0);
  EXPECT_EQ(strict.rcFactor, 0.0);
  EXPECT_GT(strict.aggGamma2, Tuning{}.aggGamma2);
}

TEST(Properties, StageCostsArithmetic) {
  StageCosts c;
  c.dominatingSet = 1;
  c.clusterColoring = 2;
  c.csa = 3;
  c.reporters = 4;
  c.uplink = 5;
  c.tree = 6;
  c.inter = 7;
  c.broadcast = 8;
  EXPECT_EQ(c.structureTotal(), 10u);
  EXPECT_EQ(c.aggregationTotal(), 26u);
  EXPECT_EQ(c.total(), 36u);
}

}  // namespace
}  // namespace mcs
