#include <gtest/gtest.h>

#include "proto/cluster_coloring.h"
#include "proto/dominating_set.h"
#include "test_support.h"

namespace mcs {
namespace {

struct CsaFixture {
  Network net;
  Simulator sim;
  Clustering cl;

  CsaFixture(int n, double side, int channels, std::uint64_t seed)
      : net(test::makeUniformNetwork(n, side, seed)), sim(net, channels, seed + 13) {
    DominatingSetResult ds = buildDominatingSet(sim);
    cl = std::move(ds.clustering);
    colorClusters(sim, cl);
  }
};

void expectConstantFactor(const Network& net, const Clustering& cl,
                          const std::vector<double>& est, double maxRatio) {
  const auto trueSize = test::trueClusterSizes(net, cl);
  for (const NodeId d : cl.dominators) {
    const auto di = static_cast<std::size_t>(d);
    const double got = est[di] + 1.0;
    const double want = trueSize[di] + 1.0;
    const double ratio = std::max(got / want, want / got);
    EXPECT_LE(ratio, maxRatio) << "cluster " << d << ": est " << est[di] << " true "
                               << trueSize[di];
  }
}

void expectClusterConsistency(const Network& net, const Clustering& cl,
                              const std::vector<double>& est) {
  // After the final broadcast every dominatee should hold its dominator's
  // estimate; tolerate a few stragglers.
  int mismatches = 0;
  for (NodeId v = 0; v < net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const NodeId d = cl.dominatorOf[vi];
    if (d != kNoNode && est[vi] != est[static_cast<std::size_t>(d)]) ++mismatches;
  }
  EXPECT_LE(mismatches, net.size() / 50);
}

class CsaLargeSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsaLargeSeeds, ConstantFactorEstimates) {
  CsaFixture f(400, 1.3, 4, GetParam());
  const CsaResult res = runCsaLarge(f.sim, f.cl);
  expectConstantFactor(f.net, f.cl, res.estimateOfNode, 8.0);
  expectClusterConsistency(f.net, f.cl, res.estimateOfNode);
  EXPECT_GT(res.slotsUsed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsaLargeSeeds, ::testing::Values(1u, 2u, 3u));

class CsaSmallSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsaSmallSeeds, ConstantFactorEstimates) {
  CsaFixture f(400, 1.3, 8, GetParam());
  const CsaResult res = runCsaSmall(f.sim, f.cl);
  expectConstantFactor(f.net, f.cl, res.estimateOfNode, 10.0);
  expectClusterConsistency(f.net, f.cl, res.estimateOfNode);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsaSmallSeeds, ::testing::Values(1u, 2u, 3u));

TEST(Csa, LargePhasesTrackDeltaHat) {
  // Fewer phases when a tight DeltaHat is known (Lemma 12's log DeltaHat).
  CsaFixture f(300, 1.2, 4, 9);
  const int truthMax = [&] {
    const auto sizes = test::trueClusterSizes(f.net, f.cl);
    int m = 1;
    for (const int s : sizes) m = std::max(m, s);
    return m;
  }();
  Simulator sim2(f.net, 4, 77);
  const CsaResult tight = runCsaLarge(sim2, f.cl, 4 * truthMax);
  Simulator sim3(f.net, 4, 77);
  const CsaResult naive = runCsaLarge(sim3, f.cl, f.net.size() * 8);
  EXPECT_LT(tight.slotsUsed, naive.slotsUsed);
  expectConstantFactor(f.net, f.cl, tight.estimateOfNode, 8.0);
}

TEST(Csa, AutoSelectsSmallForSmallDeltaHat) {
  CsaFixture f(300, 1.2, 16, 4);
  // deltaHat <= F log^2 n -> the small variant runs; both must be correct,
  // and for small deltaHat the small variant is cheaper (Lemma 14).
  const int deltaHat = 64;
  Simulator simSmall(f.net, 16, 5);
  const CsaResult small = runCsaSmall(simSmall, f.cl, deltaHat);
  Simulator simLarge(f.net, 16, 5);
  const CsaResult large = runCsaLarge(simLarge, f.cl, f.net.size());
  EXPECT_LT(small.slotsUsed, large.slotsUsed);
}

TEST(Csa, EmptyClustersGetZero) {
  // Nodes far apart: every cluster is a singleton with zero dominatees.
  std::vector<Vec2> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({1.5 * i, 0.0});
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 2, 3);
  DominatingSetResult ds = buildDominatingSet(sim);
  colorClusters(sim, ds.clustering);
  const CsaResult res = runCsa(sim, ds.clustering);
  for (const NodeId d : ds.clustering.dominators) {
    EXPECT_EQ(res.estimateOfNode[static_cast<std::size_t>(d)], 0.0);
  }
}

TEST(Csa, Deterministic) {
  const auto run = [] {
    CsaFixture f(250, 1.2, 4, 21);
    return runCsaLarge(f.sim, f.cl).estimateOfNode;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mcs
