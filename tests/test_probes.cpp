#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "store/format.h"
#include "test_support.h"

/// Decode-attribution and time-series probes (telemetry/probes.h,
/// telemetry/series.h): the series' coalescing and merge algebra, the
/// cause partition invariant (sum(cause.*) == listen_intents - decodes),
/// determinism across thread counts and medium modes, the never-feeds-back
/// contract for armed runs, and the JSON / store-blob round trips.
namespace mcs {
namespace {

using telemetry::ProbeState;
using telemetry::SlotSeries;

/// Arms probes (which also arms metrics) around a test and restores the
/// process-global dark default every other test expects.
struct ProbesGuard {
  explicit ProbesGuard(bool armed = true) {
    telemetry::resetMetrics();
    telemetry::resetProbes();
    telemetry::setProbesEnabled(armed);
  }
  ~ProbesGuard() {
    telemetry::setProbesEnabled(false);
    telemetry::setEnabled(false);
    telemetry::resetProbes();
    telemetry::resetMetrics();
  }
};

/// A small mixed-intent workload for direct Medium runs.  `silentChannel`
/// reserves one channel nobody transmits on, so listeners parked there
/// exercise the no_transmitter cause.
struct ProbeWorkload {
  std::vector<Vec2> pts;
  std::vector<Intent> intents;

  ProbeWorkload(int n, int channels, std::uint64_t seed, bool silentChannel = false) {
    Rng rng(seed);
    pts = deployUniformSquare(n, 1.2, rng);
    intents.resize(static_cast<std::size_t>(n));
    const int txChannels = silentChannel ? channels - 1 : channels;
    for (int v = 0; v < n; ++v) {
      const auto c = static_cast<ChannelId>(rng.below(static_cast<std::uint64_t>(channels)));
      const bool canTx = static_cast<int>(c) < txChannels;
      intents[static_cast<std::size_t>(v)] = (canTx && rng.bernoulli(0.15))
                                                 ? Intent::transmit(c, {})
                                                 : Intent::listen(c);
    }
  }
};

QuantileSketch sketchOf(std::initializer_list<double> xs) {
  QuantileSketch s;
  for (const double x : xs) s.add(x);
  return s;
}

// ------------------------------------------------------------ slot series

/// Recording the same slots in any order yields the same series: a slot
/// recorded before the span grew coarse coalesces to exactly where direct
/// binning at the final span would have put it (windows align at slot 0,
/// so floor(floor(t/s)/2) == floor(t/2s)).
TEST(SlotSeries, RecordOrderInvariantAcrossCoalescing) {
  const std::uint64_t maxSlot = 1000;  // forces span 1 -> 16
  SlotSeries forward, reverse;
  for (std::uint64_t t = 0; t <= maxSlot; ++t) {
    forward.recordSlot(t, t % 7, t % 3, t % 5, sketchOf({static_cast<double>(t % 11)}));
  }
  for (std::uint64_t t = maxSlot + 1; t-- > 0;) {
    reverse.recordSlot(t, t % 7, t % 3, t % 5, sketchOf({static_cast<double>(t % 11)}));
  }
  // Reverse records slot 1000 first, jumping straight to the final span;
  // forward coalesces through spans 1, 2, 4, 8.  Same bits either way.
  EXPECT_EQ(forward.span(), 16u);
  EXPECT_EQ(forward, reverse);
  EXPECT_EQ(forward.windowsUsed(), (maxSlot / forward.span()) + 1);
}

TEST(SlotSeries, MergeOrderAndTreeShapeInvariant) {
  // Partition one stream of slot records across three series with very
  // different spans (a is fine, c is coarse), then fold every way.
  SlotSeries whole, a, b, c;
  for (std::uint64_t t = 0; t < 5000; ++t) {
    const std::uint64_t listens = 2 + t % 4;
    const std::uint64_t decodes = t % 2;
    const QuantileSketch m = sketchOf({static_cast<double>(t % 13) - 6.0});
    whole.recordSlot(t, listens, decodes, 1, m);
    if (t < 40) {
      a.recordSlot(t, listens, decodes, 1, m);
    } else if (t < 900) {
      b.recordSlot(t, listens, decodes, 1, m);
    } else {
      c.recordSlot(t, listens, decodes, 1, m);
    }
    if (t % 10 == 0) {
      whole.recordProgress(t, t, 5000);
      c.recordProgress(t, t, 5000);  // progress lands in one shard only
    }
  }
  SlotSeries whole2;
  for (std::uint64_t t = 0; t < 5000; ++t) {
    if (t % 10 == 0) whole2.recordProgress(t, t, 5000);
  }
  for (std::uint64_t t = 0; t < 5000; ++t) {
    whole2.recordSlot(t, 2 + t % 4, t % 2, 1,
                      sketchOf({static_cast<double>(t % 13) - 6.0}));
  }
  EXPECT_EQ(whole, whole2);  // interleaving of record kinds is irrelevant

  const auto fold = [](std::vector<const SlotSeries*> parts) {
    SlotSeries out;
    for (const SlotSeries* p : parts) out.merge(*p);
    return out;
  };
  const SlotSeries leftToRight = fold({&a, &b, &c});
  const SlotSeries rightToLeft = fold({&c, &b, &a});
  SlotSeries tree = a;  // (a + c) + b: coarse joins first
  tree.merge(c);
  tree.merge(b);
  EXPECT_EQ(leftToRight, whole);
  EXPECT_EQ(rightToLeft, whole);
  EXPECT_EQ(tree, whole);
}

TEST(SlotSeries, MergeIntoEmptyAndWithEmpty) {
  SlotSeries s;
  s.recordSlot(3, 10, 4, 2, sketchOf({1.0, -2.0}));
  SlotSeries empty, onto;
  onto.merge(s);
  EXPECT_EQ(onto, s);
  s.merge(empty);  // no-op: an empty series must not coarsen the target
  EXPECT_EQ(onto, s);
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(s.empty());
}

// ---------------------------------------------------------- serialization

TEST(ProbeSerialization, JsonRoundTripIsLossless) {
  ProbeState p;
  p.marginDb = sketchOf({-3.5, 0.0, 12.25, 12.25, 40.0});
  p.nearDb = sketchOf({7.0, 8.5});
  p.farDb = sketchOf({-60.0});
  for (std::uint64_t t = 0; t < 300; ++t) {
    p.series.recordSlot(t, 5, t % 2, 3, sketchOf({static_cast<double>(t % 9)}));
    if (t % 25 == 0) p.series.recordProgress(t, t, 300);
  }
  const ProbeState back = telemetry::probesFromJson(telemetry::probesToJson(p));
  EXPECT_EQ(back, p);

  const ProbeState emptyBack =
      telemetry::probesFromJson(telemetry::probesToJson(ProbeState()));
  EXPECT_TRUE(emptyBack.empty());
}

TEST(ProbeSerialization, StoreBlobRoundTripIsLossless) {
  ProbeState p;
  p.marginDb = sketchOf({-1.0, 2.0, 2.0, 33.0});
  p.farDb = sketchOf({-12.5});
  for (std::uint64_t t = 0; t < 150; ++t) {
    p.series.recordSlot(t, 4, 1, 2, sketchOf({static_cast<double>(t) / 10.0}));
  }
  std::string blob, err;
  store::appendProbeBlob(p, blob);
  ProbeState back;
  ASSERT_TRUE(store::parseProbeBlob(blob.data(), blob.size(), back, err)) << err;
  EXPECT_EQ(back, p);

  // The canonical empty blob is a single byte, and parses back empty.
  std::string emptyBlob;
  store::appendProbeBlob(ProbeState(), emptyBlob);
  EXPECT_EQ(emptyBlob.size(), 1u);
  ProbeState emptyBack;
  emptyBack.marginDb.add(99.0);  // parse must reset stale state
  ASSERT_TRUE(store::parseProbeBlob(emptyBlob.data(), emptyBlob.size(), emptyBack, err))
      << err;
  EXPECT_TRUE(emptyBack.empty());

  // Truncated full blobs fail loudly rather than misparse.
  const std::string cut = blob.substr(0, blob.size() / 2);
  ProbeState cutBack;
  EXPECT_FALSE(store::parseProbeBlob(cut.data(), cut.size(), cutBack, err));
}

// --------------------------------------------------------- cause partition

/// Every failed listen lands in exactly one cause bucket: the partition
/// invariant CI checks on every smoke, here with the dead-listener and
/// no-transmitter buckets forced non-empty.
TEST(CausePartition, CausesSumToFailedListens) {
  // Channel 2 is silent (listeners there hit no_transmitter); a slice of
  // nodes is marked dead via the attribution mask.
  const ProbeWorkload w(500, 3, 17, /*silentChannel=*/true);
  const ProbesGuard guard;
  SinrParams params;
  params.mediumMode = MediumMode::NearFar;
  Medium medium(params, 3, 2);
  std::vector<std::uint8_t> alive(w.pts.size(), 1);
  for (std::size_t v = 0; v < alive.size(); v += 10) alive[v] = 0;
  medium.setAliveMask(alive);
  std::vector<Reception> rx;
  for (int slot = 0; slot < 6; ++slot) medium.resolveSlot(w.pts, w.intents, rx);

  const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
  const std::uint64_t listens = snap.counterOr("medium.listen_intents");
  const std::uint64_t decodes = snap.counterOr("medium.decodes");
  const std::uint64_t causeSum =
      snap.counterOr("cause.no_transmitter") + snap.counterOr("cause.dead_listener") +
      snap.counterOr("cause.noise_limited") + snap.counterOr("cause.interference_limited") +
      snap.counterOr("cause.nearfar_truncated") + snap.counterOr("cause.lost_tie");
  ASSERT_GT(listens, 0u);
  EXPECT_GT(decodes, 0u);
  EXPECT_EQ(causeSum, listens - decodes);
  EXPECT_GT(snap.counterOr("cause.no_transmitter"), 0u);
  EXPECT_GT(snap.counterOr("cause.dead_listener"), 0u);

  // The slot series saw the same totals the counters did.
  const ProbeState probes = telemetry::snapshotProbes();
  std::uint64_t seriesListens = 0, seriesDecodes = 0, seriesSlots = 0;
  for (const SlotSeries::Window& win : probes.series.windows()) {
    seriesListens += win.listens;
    seriesDecodes += win.decodes;
    seriesSlots += win.slots;
  }
  EXPECT_EQ(seriesListens, listens);
  EXPECT_EQ(seriesDecodes, decodes);
  EXPECT_EQ(seriesSlots, 6u);
  EXPECT_GT(probes.marginDb.count(), 0u);
}

/// A dead listener outranks every physical cause, including the silent
/// channel (dead + no transmitter classifies as dead).
TEST(CausePartition, DeadListenerTakesPrecedence) {
  const ProbesGuard guard;
  SinrParams params;
  Medium medium(params, 2, 1);
  std::vector<Vec2> pts = {{0.0, 0.0}, {0.5, 0.0}};
  // Both listen on channel 1 where nobody transmits; node 0 is dead.
  std::vector<Intent> intents = {Intent::listen(ChannelId{1}), Intent::listen(ChannelId{1})};
  medium.setAliveMask({0, 1});
  std::vector<Reception> rx;
  medium.resolveSlot(pts, intents, rx);
  const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
  EXPECT_EQ(snap.counterOr("cause.dead_listener"), 1u);
  EXPECT_EQ(snap.counterOr("cause.no_transmitter"), 1u);
}

// ------------------------------------------------------------ determinism

std::vector<telemetry::CounterSample> causeCounters(const telemetry::MetricsSnapshot& snap) {
  std::vector<telemetry::CounterSample> out;
  for (const telemetry::CounterSample& c : snap.counters) {
    if (c.name.rfind("cause.", 0) == 0) out.push_back(c);
  }
  return out;
}

telemetry::MetricsSnapshot runArmed(const ProbeWorkload& w, const SinrParams& params,
                                    int channels, int threads, ProbeState* probesOut = nullptr) {
  const ProbesGuard guard;
  Medium medium(params, channels, threads);
  medium.seedFading(41);
  std::vector<Reception> rx;
  for (int slot = 0; slot < 5; ++slot) medium.resolveSlot(w.pts, w.intents, rx);
  if (probesOut != nullptr) *probesOut = telemetry::snapshotProbes();
  return telemetry::snapshotMetrics();
}

/// Cause counters and the whole probe aggregate are invariant to the
/// batch lane count — same contract as the counter registry.
TEST(CauseDeterminism, ThreadCountInvariant) {
  const ProbeWorkload w(600, 2, 23);
  SinrParams params;
  params.mediumMode = MediumMode::NearFar;
  params.fading.model = FadingModel::RayleighLognormal;
  ProbeState probes1, probes4;
  const telemetry::MetricsSnapshot one = runArmed(w, params, 2, 1, &probes1);
  const telemetry::MetricsSnapshot four = runArmed(w, params, 2, 4, &probes4);
  const auto a = causeCounters(one);
  const auto b = causeCounters(four);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].value, b[i].value) << a[i].name;
  }
  EXPECT_EQ(probes1, probes4);  // sketches and series, bit-for-bit
}

/// Without fading, NearFar classifies causes identically to Exact: every
/// transmitter that could clear beta*noise is inside the near radius, so
/// `best` (and the tie count above the decode bar) agree between modes.
TEST(CauseDeterminism, ExactMatchesNearFarWithoutFading) {
  const ProbeWorkload w(500, 2, 31, /*silentChannel=*/true);
  SinrParams exact;
  exact.mediumMode = MediumMode::Exact;
  SinrParams nearfar = exact;
  nearfar.mediumMode = MediumMode::NearFar;
  const telemetry::MetricsSnapshot a = runArmed(w, exact, 2, 2);
  const telemetry::MetricsSnapshot b = runArmed(w, nearfar, 2, 2);
  const auto ca = causeCounters(a);
  const auto cb = causeCounters(b);
  ASSERT_FALSE(ca.empty());
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].name, cb[i].name);
    EXPECT_EQ(ca[i].value, cb[i].value) << ca[i].name;
  }
  EXPECT_EQ(a.counterOr("cause.nearfar_truncated"), 0u);
}

// ------------------------------------------- the never-feeds-back contract

/// Arming probes must not change a Reception: the armed sweep adds only
/// reads and compares.  Fading + NearFar exercises the counter-keyed draw
/// path and the gridded farBestExact attribution probe.
TEST(ProbesNeverFeedBack, ArmedRunBitIdenticalToDisarmed) {
  const ProbeWorkload w(400, 2, 29);
  SinrParams params;
  params = params.withRange(1.0);
  params.fading.model = FadingModel::RayleighLognormal;
  params.mediumMode = MediumMode::NearFar;

  const auto receptions = [&](bool armed) {
    const ProbesGuard guard(armed);
    Medium medium(params, 2, 2);
    medium.seedFading(77);
    std::vector<Reception> rx;
    std::vector<Reception> all;
    for (int slot = 0; slot < 4; ++slot) {
      medium.resolveSlot(w.pts, w.intents, rx);
      all.insert(all.end(), rx.begin(), rx.end());
    }
    return all;
  };
  const std::vector<Reception> off = receptions(false);
  const std::vector<Reception> on = receptions(true);

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].received, on[i].received) << i;
    EXPECT_EQ(off[i].sinr, on[i].sinr) << i;  // bitwise: no tolerance
    EXPECT_EQ(off[i].signalPower, on[i].signalPower) << i;
    EXPECT_EQ(off[i].totalPower, on[i].totalPower) << i;
  }
}

}  // namespace
}  // namespace mcs
