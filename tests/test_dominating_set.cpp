#include <gtest/gtest.h>

#include "test_support.h"

namespace mcs {
namespace {

class DominatingSetSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominatingSetSeeds, ClusteringInvariants) {
  const std::uint64_t seed = GetParam();
  Network net = test::makeUniformNetwork(400, 1.5, seed);
  Simulator sim(net, 4, seed + 100);
  const DominatingSetResult ds = buildDominatingSet(sim);
  const Clustering& cl = ds.clustering;

  // Every node bound; dominators bound to themselves; binding within 2 r_c
  // (r_c typically, 2 r_c after a conflict-demotion forward).
  int beyondRc = 0;
  for (NodeId v = 0; v < net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const NodeId d = cl.dominatorOf[vi];
    ASSERT_NE(d, kNoNode);
    ASSERT_TRUE(cl.isDominator[static_cast<std::size_t>(d)]);
    if (cl.isDominator[vi]) {
      EXPECT_EQ(d, v);
    }
    EXPECT_LE(net.distance(v, d), 2 * net.rc() + 1e-12);
    if (net.distance(v, d) > net.rc() + 1e-12) ++beyondRc;
  }
  // Forwarded bindings are the exception, not the rule.
  EXPECT_LE(beyondRc, net.size() / 10);

  // dominators list is consistent with the mask.
  int maskCount = 0;
  for (NodeId v = 0; v < net.size(); ++v) {
    maskCount += cl.isDominator[static_cast<std::size_t>(v)] != 0;
  }
  EXPECT_EQ(maskCount, static_cast<int>(cl.dominators.size()));

  // Near-independence (Lemma 6's whp guarantee, minus the rare
  // simultaneous-join cases conflict resolution missed).
  const int violations = test::independenceViolations(net, cl, net.rc());
  EXPECT_LE(violations, std::max(1, static_cast<int>(cl.dominators.size()) / 20));

  // Constant density: no r_c-ball holds too many dominators.
  const int bound = packingBound(net.rc(), net.rc());
  for (const NodeId d : cl.dominators) {
    int inBall = 0;
    for (const NodeId e : cl.dominators) {
      if (net.distance(d, e) <= net.rc()) ++inBall;
    }
    EXPECT_LE(inBall, bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatingSetSeeds, ::testing::Values(1u, 2u, 3u, 4u));

TEST(DominatingSet, SparseNetworkAllDominators) {
  // Pairwise distances exceed r_c: everyone must self-elect.
  std::vector<Vec2> pts;
  for (int i = 0; i < 8; ++i) pts.push_back({0.5 * i, 0.0});  // r_c = 0.12
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 1, 3);
  const DominatingSetResult ds = buildDominatingSet(sim);
  EXPECT_EQ(ds.clustering.dominators.size(), 8u);
}

TEST(DominatingSet, DenseBallFewDominators) {
  Rng rng(5);
  auto pts = deployUniformDisk(200, 0.05, rng);  // all within one r_c ball
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 1, 6);
  const DominatingSetResult ds = buildDominatingSet(sim);
  EXPECT_LE(ds.clustering.dominators.size(), 4u);
  EXPECT_GE(ds.clustering.dominators.size(), 1u);
}

TEST(DominatingSet, RoundsScaleLogarithmically) {
  // Rounds / ln n stays bounded as n grows (Lemma 7's O(log n)).
  double worstRatio = 0.0;
  for (const int n : {100, 200, 400, 800}) {
    Network net = test::makeUniformNetwork(n, 1.2, 9);
    Simulator sim(net, 1, 10);
    const DominatingSetResult ds = buildDominatingSet(sim);
    const double ratio = static_cast<double>(ds.roundsRun) / std::log(n);
    worstRatio = std::max(worstRatio, ratio);
  }
  EXPECT_LT(worstRatio, 60.0);
}

TEST(DominatingSet, Deterministic) {
  const auto run = [] {
    Network net = test::makeUniformNetwork(250, 1.2, 11);
    Simulator sim(net, 2, 12);
    return buildDominatingSet(sim).clustering.dominators;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mcs
