// The columnar campaign store's durability contract (store/writer.h,
// store/reader.h, store/query.h): what goes in comes back bit-identical
// through the mmap, the file's bytes do not depend on row arrival
// order (the property the coordinator's out-of-order RESULT appends
// lean on), and queries over the mapping re-merge the per-cell
// accumulators exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "store/query.h"
#include "store/reader.h"
#include "store/writer.h"
#include "sweep/report.h"
#include "util/rng.h"

using namespace mcs;

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Four cells over a 2x2 axis grid, two metrics with distinct sample
/// streams, telemetry on alternating cells.
struct Fixture {
  std::vector<store::StoreCellRow> rows;
  std::vector<NamedStats> stats;                 // parallel to rows
  std::vector<MetricMap> telemetry;              // parallel to rows
  std::vector<telemetry::ProbeState> probes;     // parallel to rows

  Fixture() {
    Rng rng(424242);
    stats.resize(4);
    telemetry.resize(4);
    probes.resize(4);
    for (int c = 0; c < 4; ++c) {
      StreamingStats slots, rate;
      for (int i = 0; i < 12; ++i) {
        slots.add(rng.uniform(1.0, 9.0) + c);
        rate.add(rng.uniform(0.0, 1.0));
      }
      auto& st = stats[static_cast<std::size_t>(c)];
      st.emplace_back("slots", std::move(slots));
      st.emplace_back("decode_rate", std::move(rate));
      if (c % 2 == 0) {
        telemetry[static_cast<std::size_t>(c)].set("tm.medium.collisions",
                                                   10.0 * c + 1.0);
        telemetry[static_cast<std::size_t>(c)].set("tm.sim.slots", 100.0 + c);
      } else {
        // Probe state on the other cells: attribution sketches plus a
        // slot series, exercising the pb blob column alongside tm.
        telemetry::ProbeState& p = probes[static_cast<std::size_t>(c)];
        for (int i = 0; i < 20; ++i) p.marginDb.add(rng.uniform(-30.0, 30.0));
        for (std::uint64_t t = 0; t < 200; ++t) {
          QuantileSketch m;
          m.add(rng.uniform(-5.0, 5.0));
          p.series.recordSlot(t, 8, t % 3, 2, m);
        }
      }

      store::StoreCellRow row;
      row.cellIndex = c;
      row.label = "n=" + std::to_string(c / 2) + "/k=" + std::to_string(c % 2);
      row.assignments = {{"n", std::to_string(64 << (c / 2))},
                         {"k", std::to_string(c % 2)}};
      row.seeds = 12;
      row.failures = c == 3 ? 1 : 0;
      row.delivered = 12 - row.failures;
      row.valid = row.delivered;
      row.stats = &stats[static_cast<std::size_t>(c)];
      row.telemetry = &telemetry[static_cast<std::size_t>(c)];
      row.probes = &probes[static_cast<std::size_t>(c)];
      rows.push_back(std::move(row));
    }
  }

  /// Writes the fixture's rows at their natural slots in `order`.
  bool write(const std::string& path, const std::vector<std::size_t>& order,
             std::string& err) const {
    store::StoreWriter w;
    store::StoreMeta meta;
    meta.campaign = "store_fixture";
    meta.base = "unit";
    meta.totalCells = 4;
    meta.cellSlots = 4;
    if (!w.open(path, meta, err)) return false;
    for (std::size_t slot : order) {
      if (!w.appendCell(slot, rows[slot], err)) return false;
    }
    return w.finish(err);
  }
};

}  // namespace

TEST(Store, RoundTripsEveryColumnAndBlob) {
  const Fixture fx;
  const std::string path = testing::TempDir() + "store_roundtrip.store";
  std::string err;
  // Out-of-order slots on purpose: the spool is positional.
  ASSERT_TRUE(fx.write(path, {2, 0, 3, 1}, err)) << err;

  store::StoreReader r;
  ASSERT_TRUE(r.open(path, err)) << err;
  EXPECT_EQ(r.cells(), 4u);
  EXPECT_EQ(r.campaignName(), "store_fixture");
  EXPECT_EQ(r.baseName(), "unit");
  ASSERT_EQ(r.axisNames(), (std::vector<std::string>{"n", "k"}));
  ASSERT_EQ(r.metricNames(), (std::vector<std::string>{"slots", "decode_rate"}));
  EXPECT_EQ(r.header().totalCells, 4u);
  EXPECT_EQ(r.header().shardCount, 1u);

  for (std::size_t row = 0; row < 4; ++row) {
    const store::StoreCellRow& src = fx.rows[row];
    EXPECT_EQ(r.cellIndexCol()[row], static_cast<std::uint32_t>(src.cellIndex));
    EXPECT_EQ(r.str(r.labelCol()[row]), src.label);
    EXPECT_EQ(r.str(r.axisCol(0)[row]), src.assignments[0].second);
    EXPECT_EQ(r.str(r.axisCol(1)[row]), src.assignments[1].second);
    EXPECT_EQ(r.seedsCol()[row], 12u);
    EXPECT_EQ(r.failuresCol()[row], static_cast<std::uint32_t>(src.failures));
    EXPECT_EQ(r.deliveredCol()[row], static_cast<std::uint32_t>(src.delivered));

    for (std::size_t m = 0; m < 2; ++m) {
      const StreamingStats& want = fx.stats[row][m].second;
      const OnlineStats got = r.momentsAt(m, row);
      EXPECT_EQ(got.count(), want.moments.count());
      EXPECT_EQ(got.mean(), want.moments.mean());
      EXPECT_EQ(got.min(), want.moments.min());
      EXPECT_EQ(got.max(), want.moments.max());
      EXPECT_EQ(got.sum(), want.moments.sum());
      EXPECT_EQ(got.variance(), want.moments.variance());

      StreamingStats full;
      ASSERT_TRUE(r.statsAt(m, row, full, err)) << err;
      EXPECT_EQ(full.quantiles.quantile(0.5), want.quantiles.quantile(0.5));
      EXPECT_EQ(full.quantiles.quantile(0.95), want.quantiles.quantile(0.95));
    }

    std::vector<std::pair<std::string, double>> tm;
    ASSERT_TRUE(r.telemetryAt(row, tm, err)) << err;
    EXPECT_EQ(tm.size(), fx.telemetry[row].entries().size());
    for (const auto& [name, value] : fx.telemetry[row].entries()) {
      bool found = false;
      for (const auto& [gotName, gotValue] : tm) {
        if (gotName == name) {
          EXPECT_EQ(gotValue, value);
          found = true;
        }
      }
      EXPECT_TRUE(found) << name;
    }

    // The probe blob: cells written without probe state read back empty,
    // the others reproduce the ProbeState bit-for-bit.
    telemetry::ProbeState pb;
    ASSERT_TRUE(r.probesAt(row, pb, err)) << err;
    EXPECT_EQ(pb, fx.probes[row]);
    EXPECT_EQ(pb.empty(), fx.probes[row].empty());
  }
}

TEST(Store, BytesDoNotDependOnWriteOrder) {
  // The coordinator appends rows in worker-arrival order; the in-process
  // runner appends in slot order.  Both must produce the same file —
  // this is the property the CI worker-parity gate (cmp) leans on, and
  // it exercises the canonical string re-pool: different write orders
  // intern labels/axis values/telemetry names in different orders.
  const Fixture fx;
  std::string err;
  const std::string a = testing::TempDir() + "store_order_a.store";
  const std::string b = testing::TempDir() + "store_order_b.store";
  const std::string c = testing::TempDir() + "store_order_c.store";
  ASSERT_TRUE(fx.write(a, {0, 1, 2, 3}, err)) << err;
  ASSERT_TRUE(fx.write(b, {3, 2, 1, 0}, err)) << err;
  ASSERT_TRUE(fx.write(c, {1, 3, 0, 2}, err)) << err;
  const std::string bytesA = readFile(a);
  ASSERT_FALSE(bytesA.empty());
  EXPECT_EQ(bytesA, readFile(b));
  EXPECT_EQ(bytesA, readFile(c));
}

TEST(Store, FinishFailsOnMissingSlot) {
  const Fixture fx;
  const std::string path = testing::TempDir() + "store_missing.store";
  std::string err;
  store::StoreWriter w;
  store::StoreMeta meta;
  meta.campaign = "partial";
  meta.base = "unit";
  meta.totalCells = 4;
  meta.cellSlots = 4;
  ASSERT_TRUE(w.open(path, meta, err)) << err;
  ASSERT_TRUE(w.appendCell(0, fx.rows[0], err)) << err;
  ASSERT_TRUE(w.appendCell(2, fx.rows[2], err)) << err;
  EXPECT_FALSE(w.finish(err));
  EXPECT_NE(err.find("slot"), std::string::npos) << err;
  // The atomic rename never happened: no store at the target path.
  store::StoreReader r;
  EXPECT_FALSE(r.open(path, err));
}

TEST(Store, DoubleWriteToOneSlotFails) {
  const Fixture fx;
  const std::string path = testing::TempDir() + "store_double.store";
  std::string err;
  store::StoreWriter w;
  store::StoreMeta meta;
  meta.campaign = "dup";
  meta.base = "unit";
  meta.totalCells = 4;
  meta.cellSlots = 4;
  ASSERT_TRUE(w.open(path, meta, err)) << err;
  ASSERT_TRUE(w.appendCell(1, fx.rows[1], err)) << err;
  EXPECT_FALSE(w.appendCell(1, fx.rows[1], err));
}

TEST(StoreQuery, GroupByMatchesManualMerge) {
  const Fixture fx;
  const std::string path = testing::TempDir() + "store_groupby.store";
  std::string err;
  ASSERT_TRUE(fx.write(path, {0, 1, 2, 3}, err)) << err;
  store::StoreReader r;
  ASSERT_TRUE(r.open(path, err)) << err;

  store::StoreQuery q;
  q.metrics = {"slots"};
  q.groupBy = "k";
  std::vector<store::QueryGroup> groups;
  ASSERT_TRUE(store::runStoreQuery(r, q, groups, err)) << err;
  ASSERT_EQ(groups.size(), 2u);  // k=0, k=1 in first-appearance order
  EXPECT_EQ(groups[0].key, "0");
  EXPECT_EQ(groups[1].key, "1");

  for (int k = 0; k < 2; ++k) {
    const store::QueryGroup& g = groups[static_cast<std::size_t>(k)];
    EXPECT_EQ(g.cells, 2u);
    ASSERT_EQ(g.stats.size(), 1u);
    EXPECT_EQ(g.stats[0].first, "slots");
    // Manual slot-order merge of the same cells.
    StreamingStats manual;
    for (int c = k; c < 4; c += 2) {
      manual.merge(fx.stats[static_cast<std::size_t>(c)][0].second);
    }
    EXPECT_EQ(g.stats[0].second.moments.count(), manual.moments.count());
    EXPECT_EQ(g.stats[0].second.moments.mean(), manual.moments.mean());
    EXPECT_EQ(g.stats[0].second.moments.sum(), manual.moments.sum());
    EXPECT_EQ(g.stats[0].second.quantiles.quantile(0.5), manual.quantiles.quantile(0.5));
    EXPECT_EQ(g.stats[0].second.quantiles.quantile(0.95), manual.quantiles.quantile(0.95));
  }

  // A where filter narrows to the matching cells only.
  store::StoreQuery filtered;
  filtered.where = {{"n", "64"}};
  std::vector<store::QueryGroup> one;
  ASSERT_TRUE(store::runStoreQuery(r, filtered, one, err)) << err;
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].key, "all");
  EXPECT_EQ(one[0].cells, 2u);
  ASSERT_EQ(one[0].stats.size(), 2u);  // empty select = every metric
}

TEST(StoreQuery, UnknownNamesFailWithInventory) {
  const Fixture fx;
  const std::string path = testing::TempDir() + "store_badquery.store";
  std::string err;
  ASSERT_TRUE(fx.write(path, {0, 1, 2, 3}, err)) << err;
  store::StoreReader r;
  ASSERT_TRUE(r.open(path, err)) << err;

  store::StoreQuery badMetric;
  badMetric.metrics = {"throughput"};
  std::vector<store::QueryGroup> out;
  EXPECT_FALSE(store::runStoreQuery(r, badMetric, out, err));
  EXPECT_NE(err.find("slots"), std::string::npos) << err;  // lists what exists

  store::StoreQuery badGroup;
  badGroup.groupBy = "channels";
  EXPECT_FALSE(store::runStoreQuery(r, badGroup, out, err));
  EXPECT_NE(err.find("n"), std::string::npos) << err;

  store::StoreQuery badWhere;
  badWhere.where = {{"nope", "1"}};
  EXPECT_FALSE(store::runStoreQuery(r, badWhere, out, err));
}

TEST(StoreQuery, SummariesViewMatchesStoredAccumulators) {
  const Fixture fx;
  const std::string path = testing::TempDir() + "store_summaries.store";
  std::string err;
  ASSERT_TRUE(fx.write(path, {3, 1, 2, 0}, err)) << err;
  store::StoreReader r;
  ASSERT_TRUE(r.open(path, err)) << err;

  Json view;
  ASSERT_TRUE(store::storeSummariesJson(r, view, err)) << err;
  EXPECT_EQ(view.stringAt("name"), "sweep_store_fixture");
  EXPECT_EQ(view.stringAt("kind"), "sweep");
  const Json* meta = view.find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->stringAt("source"), "store");
  const Json* cells = view.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items().size(), 4u);

  for (std::size_t row = 0; row < 4; ++row) {
    const Json& cell = cells->items()[row];
    EXPECT_EQ(cell.stringAt("label"), fx.rows[row].label);
    const Json* summaries = cell.find("summaries");
    ASSERT_NE(summaries, nullptr);
    for (std::size_t m = 0; m < 2; ++m) {
      const Json* got = summaries->find(fx.stats[row][m].first);
      ASSERT_NE(got, nullptr);
      // The view's summary bytes equal the source accumulator's summary
      // bytes — the store lost nothing a report consumer can see.
      EXPECT_EQ(got->dump(), summaryToJson(fx.stats[row][m].second.summary()).dump());
    }
  }
}
