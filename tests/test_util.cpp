#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/args.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mcs {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIndependentStreams) {
  Rng root(7);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
  // Forks are deterministic: the same root seed and stream id reproduce
  // the same stream.
  Rng root2(7);
  Rng c = root.fork(3);
  Rng c2 = root2.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c(), c2());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    ASSERT_GE(x, -2.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BelowBounds) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.below(7);
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t x = rng.between(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(OnlineStats, WelfordMatchesTwoPass) {
  // Welford's single-pass variance must agree with the textbook two-pass
  // computation to 1e-12 relative, including on badly conditioned data
  // (large mean, small spread).
  Rng rng(77);
  for (const double offset : {0.0, 100.0, 1e6}) {
    OnlineStats s;
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i) {
      const double x = offset + rng.uniform(-1.0, 1.0);
      xs.push_back(x);
      s.add(x);
    }
    double mean = 0.0;
    for (const double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double m2 = 0.0;
    for (const double x : xs) m2 += (x - mean) * (x - mean);
    const double twoPass = m2 / static_cast<double>(xs.size() - 1);
    // Both algorithms lose digits as the condition number mean/stddev
    // grows; scale the 1e-12 bound accordingly (it is exact-tight for the
    // well-conditioned cases).
    const double kappa = std::max(1.0, std::abs(mean));
    EXPECT_NEAR(s.mean(), mean, 1e-12 * kappa);
    EXPECT_NEAR(s.variance(), twoPass, 1e-12 * std::max(1.0, twoPass) * kappa);
  }
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12 * whole.variance());
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
  EXPECT_NEAR(left.sum(), whole.sum(), 1e-9 * std::abs(whole.sum()));

  // Merging into/from empty accumulators is the identity.
  OnlineStats empty;
  OnlineStats copy = whole;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), whole.count());
  EXPECT_DOUBLE_EQ(copy.mean(), whole.mean());
  empty.merge(whole);
  EXPECT_EQ(empty.count(), whole.count());
  EXPECT_DOUBLE_EQ(empty.variance(), whole.variance());
}

TEST(Percentile, EdgeCases) {
  // n = 1: every percentile is the single sample.
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 50.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 100.0), 42.0);
  // Ties collapse to the tied value.
  EXPECT_DOUBLE_EQ(percentile({3.0, 3.0, 3.0, 3.0}, 95.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 3.0, 3.0, 3.0, 9.0}, 50.0), 3.0);
  // p0 / p100 are min / max regardless of input order.
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 100.0), 9.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 150.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -5.0), 1.0);
  // Interpolation between order statistics.
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 75.0), 7.5);
}

TEST(Summary, PercentileFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p95, 95.05, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Tiny samples: p95 interpolates toward the max.
  const Summary two = summarize({1.0, 2.0});
  EXPECT_DOUBLE_EQ(two.p95, 1.95);
  const Summary empty = summarize({});
  EXPECT_DOUBLE_EQ(empty.p95, 0.0);
}

TEST(Quantile, Basics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Quantile, EmptyInputIsFatal) {
  // A quantile of nothing is a logic error upstream (a filter that ate
  // every sample), not a zero — summarize() keeps its lenient empty
  // Summary, but asking for an order statistic of an empty set aborts.
  EXPECT_DEATH((void)quantile({}, 0.5), "empty sample");
  EXPECT_DEATH((void)percentile({}, 50.0), "empty sample");
}

TEST(Quantile, Interpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.75), 7.5);
}

TEST(Summary, Summarize) {
  const Summary s = summarize({1, 2, 3, 4, 100});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
}

TEST(LinearSlope, ExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  EXPECT_NEAR(linearSlope(x, y), 3.0, 1e-12);
}

TEST(LinearSlope, Degenerate) {
  EXPECT_EQ(linearSlope({1.0}, {2.0}), 0.0);
  EXPECT_EQ(linearSlope({1.0, 1.0}, {2.0, 5.0}), 0.0);  // zero x-variance
}

TEST(Csv, Escape) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, SharedEscapeAndJoin) {
  // The free functions are the one escaping implementation shared by
  // CsvWriter and the sweep reports (metric names and preset
  // descriptions may contain commas/quotes).
  EXPECT_EQ(csvEscape("agg_value"), "agg_value");
  EXPECT_EQ(csvEscape("slots, total"), "\"slots, total\"");
  EXPECT_EQ(csvEscape("the \"naive\" bound"), "\"the \"\"naive\"\" bound\"");
  EXPECT_EQ(csvJoin({"a", "b,c", "d\"e\""}), "a,\"b,c\",\"d\"\"e\"\"\"");
  EXPECT_EQ(csvJoin({}), "");
}

TEST(Csv, RowCounting) {
  CsvWriter w;  // in-memory, no file
  w.header({"a", "b"});
  w.row({"1", "2"});
  w.row({"3", "4"});
  EXPECT_EQ(w.rows(), 2u);
}

TEST(Args, NamedAndPositional) {
  // Note: a bare `--flag` followed by a non-flag token consumes that token
  // as its value, so boolean flags should use `--flag=1` or come last.
  const char* argv[] = {"prog", "--n=100", "--flag=1", "pos1", "--side", "2.5", "pos2"};
  Args args(7, argv);
  EXPECT_EQ(args.getInt("n", 0), 100);
  EXPECT_TRUE(args.getBool("flag"));
  EXPECT_DOUBLE_EQ(args.getDouble("side", 0.0), 2.5);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
}

TEST(Args, BareTrailingFlag) {
  const char* argv[] = {"prog", "--verbose"};
  Args args(2, argv);
  EXPECT_TRUE(args.getBool("verbose"));
}

TEST(Args, Fallbacks) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.getInt("missing", 7), 7);
  EXPECT_EQ(args.get("missing", "x"), "x");
  EXPECT_FALSE(args.getBool("missing"));
  EXPECT_TRUE(args.getBool("missing", true));
}

TEST(Args, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  Args args(5, argv);
  EXPECT_TRUE(args.getBool("a"));
  EXPECT_FALSE(args.getBool("b"));
  EXPECT_TRUE(args.getBool("c"));
  EXPECT_FALSE(args.getBool("d"));
}

TEST(Args, NamedOrderedPreservesCommandLineOrder) {
  // Scenario/sweep overrides apply in this order, where key order is
  // load-bearing (e.g. --range after --alpha); std::map order is not it.
  const char* argv[] = {"prog", "--zeta=1", "--alpha=2", "--zeta=3", "--beta", "4"};
  Args args(6, argv);
  const auto& ordered = args.namedOrdered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0], (std::pair<std::string, std::string>{"zeta", "3"}));
  EXPECT_EQ(ordered[1], (std::pair<std::string, std::string>{"alpha", "2"}));
  EXPECT_EQ(ordered[2], (std::pair<std::string, std::string>{"beta", "4"}));
  EXPECT_EQ(args.get("zeta"), "3");  // named() agrees on the value
}

TEST(Args, NamedExposesAllFlags) {
  const char* argv[] = {"prog", "--a=1", "--b=x", "pos"};
  Args args(4, argv);
  ASSERT_EQ(args.named().size(), 2u);
  EXPECT_EQ(args.named().at("a"), "1");
  EXPECT_EQ(args.named().at("b"), "x");
}

TEST(Args, NumericGettersAcceptWellFormedValues) {
  const char* argv[] = {"prog", "--n=-42", "--x=1e-3", "--y=+2.5", "--big=123456789"};
  Args args(5, argv);
  EXPECT_EQ(args.getInt("n", 0), -42);
  EXPECT_DOUBLE_EQ(args.getDouble("x", 0.0), 1e-3);
  EXPECT_DOUBLE_EQ(args.getDouble("y", 0.0), 2.5);
  EXPECT_EQ(args.getInt("big", 0), 123456789);
}

TEST(ParseNumber, StrictWholeStringParsing) {
  long l = 0;
  EXPECT_TRUE(parseLong("123", l));
  EXPECT_EQ(l, 123);
  EXPECT_TRUE(parseLong("-7", l));
  EXPECT_FALSE(parseLong("", l));
  EXPECT_FALSE(parseLong("12x", l));
  EXPECT_FALSE(parseLong("x12", l));
  EXPECT_FALSE(parseLong("1.5", l));
  EXPECT_FALSE(parseLong("99999999999999999999999999", l));  // ERANGE

  double d = 0.0;
  EXPECT_TRUE(parseDouble("2.5", d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(parseDouble("1e3", d));
  EXPECT_FALSE(parseDouble("", d));
  EXPECT_FALSE(parseDouble("2.5abc", d));
  EXPECT_FALSE(parseDouble("abc", d));
}

// Malformed values on present flags are fatal usage errors: diagnostic on
// stderr naming the flag, exit status 2.  Silent fallback would run the
// experiment with a garbage parameter.
TEST(ArgsDeathTest, MalformedIntExitsLoudly) {
  const char* argv[] = {"prog", "--n=12x"};
  Args args(2, argv);
  EXPECT_EXIT((void)args.getInt("n", 0), ::testing::ExitedWithCode(2),
              "invalid value \"12x\" for --n");
}

TEST(ArgsDeathTest, MalformedDoubleExitsLoudly) {
  const char* argv[] = {"prog", "--side=wide"};
  Args args(2, argv);
  EXPECT_EXIT((void)args.getDouble("side", 0.0), ::testing::ExitedWithCode(2),
              "invalid value \"wide\" for --side");
}

TEST(ArgsDeathTest, EmptyValueExitsLoudly) {
  const char* argv[] = {"prog", "--n="};
  Args args(2, argv);
  EXPECT_EXIT((void)args.getInt("n", 7), ::testing::ExitedWithCode(2), "expected an integer");
}

}  // namespace
}  // namespace mcs
