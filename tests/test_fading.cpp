#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sinr/fading.h"
#include "sinr/medium.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "test_support.h"

/// The stochastic channel-impairment layer: statistical sanity of the
/// gain draws and — the load-bearing contract — bit-reproducibility of
/// impaired runs per seed, independent of thread count.
namespace mcs {
namespace {

FadingParams rayleigh() {
  FadingParams p;
  p.model = FadingModel::Rayleigh;
  return p;
}

FadingParams lognormal(double sigmaDb) {
  FadingParams p;
  p.model = FadingModel::Lognormal;
  p.shadowSigmaDb = sigmaDb;
  return p;
}

TEST(FadingField, PureFunctionOfKeyAndTriple) {
  const FadingField a(rayleigh(), 42);
  const FadingField b(rayleigh(), 42);
  const FadingField c(rayleigh(), 43);
  int differs = 0;
  for (std::uint64_t slot = 0; slot < 20; ++slot) {
    for (std::uint64_t tx = 0; tx < 5; ++tx) {
      const double g = a.gain(slot, tx, tx + 1);
      EXPECT_EQ(g, b.gain(slot, tx, tx + 1));  // bitwise: same key, same triple
      EXPECT_GT(g, 0.0);
      differs += g != c.gain(slot, tx, tx + 1);
    }
  }
  EXPECT_GT(differs, 90);  // a different key re-draws essentially everything
}

TEST(FadingField, TripleComponentsAllMatter) {
  const FadingField f(rayleigh(), 7);
  const double base = f.gain(3, 5, 9);
  EXPECT_NE(base, f.gain(4, 5, 9));
  EXPECT_NE(base, f.gain(3, 6, 9));
  EXPECT_NE(base, f.gain(3, 5, 10));
  // Asymmetric in (tx, rx): the w->v and v->w channels fade independently.
  EXPECT_NE(f.gain(3, 5, 9), f.gain(3, 9, 5));
}

TEST(FadingField, RayleighGainIsUnitMeanExponential) {
  const FadingField f(rayleigh(), 1234);
  double sum = 0.0;
  double belowOne = 0;
  const int samples = 40000;
  for (int i = 0; i < samples; ++i) {
    const double g = f.gain(static_cast<std::uint64_t>(i), 1, 2);
    ASSERT_GT(g, 0.0);
    sum += g;
    belowOne += g < 1.0;
  }
  EXPECT_NEAR(sum / samples, 1.0, 0.02);                        // E[Exp(1)] = 1
  EXPECT_NEAR(belowOne / samples, 1.0 - std::exp(-1.0), 0.01);  // P[g < 1] = 1 - e^-1
}

TEST(FadingField, LognormalGainHasUnitMedianAndDbSymmetry) {
  const double sigmaDb = 6.0;
  const FadingField f(lognormal(sigmaDb), 99);
  std::vector<double> db;
  const int samples = 40000;
  double belowOne = 0;
  for (int i = 0; i < samples; ++i) {
    const double g = f.gain(static_cast<std::uint64_t>(i), 3, 4);
    ASSERT_GT(g, 0.0);
    db.push_back(10.0 * std::log10(g));
    belowOne += g < 1.0;
  }
  // ln(gain) ~ N(0, sigma): median gain 1, dB values symmetric around 0
  // with standard deviation sigmaDb.
  EXPECT_NEAR(belowOne / samples, 0.5, 0.01);
  double mean = 0.0;
  for (const double x : db) mean += x;
  mean /= samples;
  double var = 0.0;
  for (const double x : db) var += (x - mean) * (x - mean);
  var /= samples - 1;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), sigmaDb, 0.1);
}

/// Runs `slots` random slots on a fresh Medium and returns the decode
/// trace: for every (slot, listener), whether it decoded and at what
/// signal power (bitwise-comparable doubles).
struct Trace {
  std::vector<char> received;
  std::vector<double> signal;
  std::vector<double> total;

  bool operator==(const Trace&) const = default;
};

Trace runTrace(const SinrParams& params, std::uint64_t fadingKey, int numThreads, int slots,
               std::uint64_t seed) {
  Rng rng(seed);
  const auto pts = deployUniformSquare(150, 1.0, rng);
  Medium medium(params, 4, numThreads);
  medium.seedFading(fadingKey);
  std::vector<Intent> intents(pts.size());
  std::vector<Reception> rx;
  Trace t;
  Rng intentRng(seed ^ 0x1234);
  for (int s = 0; s < slots; ++s) {
    for (std::size_t v = 0; v < pts.size(); ++v) {
      const auto c = static_cast<ChannelId>(intentRng.below(4));
      intents[v] = intentRng.bernoulli(0.2) ? Intent::transmit(c, {}) : Intent::listen(c);
    }
    medium.resolveSlot(pts, intents, rx);
    for (const Reception& r : rx) {
      t.received.push_back(r.received ? 1 : 0);
      t.signal.push_back(r.signalPower);
      t.total.push_back(r.totalPower);
    }
  }
  return t;
}

TEST(FadingMedium, SameSeedSameDecodeTrace) {
  SinrParams params;
  params.fading.model = FadingModel::RayleighLognormal;
  params.fading.shadowSigmaDb = 4.0;
  const Trace a = runTrace(params, 555, 1, 12, 77);
  const Trace b = runTrace(params, 555, 1, 12, 77);
  EXPECT_TRUE(a == b);
}

TEST(FadingMedium, DifferentFadingKeyChangesTrace) {
  SinrParams params;
  params.fading.model = FadingModel::Rayleigh;
  const Trace a = runTrace(params, 555, 1, 12, 77);
  const Trace b = runTrace(params, 556, 1, 12, 77);
  EXPECT_FALSE(a == b);
}

TEST(FadingMedium, TraceIndependentOfThreadCount) {
  SinrParams params;
  params.fading.model = FadingModel::RayleighLognormal;
  params.fading.shadowSigmaDb = 5.0;
  const Trace a = runTrace(params, 321, 1, 12, 99);
  const Trace b = runTrace(params, 321, 4, 12, 99);
  EXPECT_TRUE(a == b);
}

TEST(FadingMedium, NearFarWithFadingStaysDeterministic) {
  SinrParams params;
  params.mediumMode = MediumMode::NearFar;
  params.fading.model = FadingModel::Rayleigh;
  const Trace a = runTrace(params, 888, 1, 10, 13);
  const Trace b = runTrace(params, 888, 3, 10, 13);
  EXPECT_TRUE(a == b);
}

TEST(FadingMedium, DisabledFadingMatchesBaselineBitwise) {
  // FadingModel::None must leave the medium untouched regardless of key.
  SinrParams params;
  const Trace a = runTrace(params, FadingField::kDefaultKey, 1, 8, 3);
  const Trace b = runTrace(params, 4242, 1, 8, 3);
  EXPECT_TRUE(a == b);
}

TEST(FadingMedium, ResetStatsDoesNotRewindTheFadingSequence) {
  // A warmup/measure split (resetStats between phases) must keep drawing
  // fresh gains, not replay the consumed prefix.
  SinrParams params;
  params.fading.model = FadingModel::Rayleigh;
  Rng rng(5);
  const auto pts = deployUniformSquare(80, 1.0, rng);
  std::vector<Intent> intents(pts.size());
  for (std::size_t v = 0; v < pts.size(); ++v) {
    intents[v] = v % 4 == 0 ? Intent::transmit(0, {}) : Intent::listen(0);
  }
  Medium medium(params, 1);
  medium.seedFading(777);
  std::vector<Reception> first, second;
  medium.resolveSlot(pts, intents, first);
  medium.resetStats();
  medium.resolveSlot(pts, intents, second);
  EXPECT_EQ(medium.stats().slots, 1u);  // stats did reset...
  bool anyDiffers = false;
  for (std::size_t v = 0; v < pts.size(); ++v) {
    if (first[v].totalPower != second[v].totalPower) anyDiffers = true;
  }
  EXPECT_TRUE(anyDiffers);  // ...but the fading draws moved on
}

TEST(FadingSimulator, SeedReproducesImpairedRun) {
  // End-to-end: two Simulators over the same impaired network, same seed
  // -> identical medium statistics after identical protocol slots.
  SinrParams params;
  params.fading.model = FadingModel::Rayleigh;
  Rng rng(42);
  auto pts = deployUniformSquare(120, 1.0, rng);
  Network net(std::move(pts), params);

  const auto run = [&net](std::uint64_t seed) {
    Simulator sim(net, 4, seed);
    for (int s = 0; s < 40; ++s) {
      sim.step(
          [&sim, s](NodeId v) {
            const auto c = static_cast<ChannelId>(sim.rng(v).below(4));
            return (s + v) % 3 == 0 ? Intent::transmit(c, {}) : Intent::listen(c);
          },
          [](NodeId, const Reception&) {});
    }
    return sim.mediumStats();
  };

  const MediumStats a = run(7);
  const MediumStats b = run(7);
  EXPECT_EQ(a.decodes, b.decodes);
  EXPECT_EQ(a.listens, b.listens);
  EXPECT_EQ(a.transmissions, b.transmissions);
  const MediumStats c = run(8);
  EXPECT_NE(a.decodes, c.decodes);  // different seed, different fading + intents
}

}  // namespace
}  // namespace mcs
