// Coverage for the fast SINR medium kernel: PowerKernel equivalence with
// std::pow, the co-located-transmitter clamp, resolveSlot edge cases, and
// the NearFar / threaded execution paths against the exact reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "geom/deployment.h"
#include "sinr/medium.h"
#include "sinr/params.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mcs {
namespace {

// ---------------------------------------------------------------------------
// PowerKernel
// ---------------------------------------------------------------------------

TEST(PowerKernel, FastPathCoversIntegerAndHalfIntegerAlpha) {
  for (const double alpha : {2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.5, 8.0, 16.0}) {
    EXPECT_TRUE(PowerKernel(1.0, alpha).fastPath()) << "alpha=" << alpha;
  }
  for (const double alpha : {2.1, 3.14159, 2.7182818, 33.0}) {
    EXPECT_FALSE(PowerKernel(1.0, alpha).fastPath()) << "alpha=" << alpha;
  }
}

TEST(PowerKernel, MatchesStdPowOnRandomInputs) {
  Rng rng(42);
  for (const double alpha : {2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.5, 8.0, 3.14159}) {
    for (const double power : {1.0, 0.25, 7.5}) {
      const PowerKernel kern(power, alpha);
      for (int i = 0; i < 2000; ++i) {
        // Log-uniform squared distances spanning micro to macro scale.
        const double d2 = std::exp(rng.uniform(std::log(1e-8), std::log(1e4)));
        const double want = power / std::pow(d2, alpha / 2.0);
        const double got = kern(d2);
        EXPECT_NEAR(got, want, 1e-12 * want)
            << "alpha=" << alpha << " power=" << power << " d2=" << d2;
      }
    }
  }
}

TEST(PowerKernel, MatchesRxPowerThroughSquaredDistance) {
  const SinrParams p;
  const PowerKernel kern = p.kernel();
  for (const double d : {0.05, 0.3, 0.9, 1.7, 10.0}) {
    EXPECT_NEAR(kern(d * d), p.rxPower(d), 1e-12 * p.rxPower(d));
  }
}

// ---------------------------------------------------------------------------
// Co-located transmitter clamp (regression: rx = 1e300 used to flow into
// distanceFromPower and r.sinr, producing garbage senderDistance).
// ---------------------------------------------------------------------------

TEST(MediumColocated, DuplicatePositionDecodesWithFiniteRanging) {
  const SinrParams p;
  std::vector<Vec2> pos{{0.4, 0.4}, {0.4, 0.4}};  // transmitter on top of listener
  Message m;
  m.type = MsgType::Hello;
  std::vector<Intent> intents{Intent::transmit(0, m), Intent::listen(0)};
  std::vector<Reception> rx;
  Medium medium(p, 1);
  medium.resolveSlot(pos, intents, rx);

  const Reception& r = rx[1];
  ASSERT_TRUE(r.received);
  EXPECT_TRUE(std::isfinite(r.signalPower));
  EXPECT_TRUE(std::isfinite(r.totalPower));
  EXPECT_TRUE(std::isfinite(r.sinr));
  EXPECT_TRUE(std::isfinite(r.senderDistance));
  EXPECT_GT(r.senderDistance, 0.0);
  // The clamp maps exact co-location to exactly kMinDistance apart.
  EXPECT_NEAR(r.senderDistance, SinrParams::kMinDistance, 1e-15);
  EXPECT_NEAR(r.signalPower, p.rxPower(SinrParams::kMinDistance),
              1e-12 * p.rxPower(SinrParams::kMinDistance));
}

TEST(MediumColocated, DuplicateTransmittersCollideFinitely) {
  const SinrParams p;
  // Two transmitters at the same spot: equal (huge) powers, SINR ~ 1 < beta.
  std::vector<Vec2> pos{{0.2, 0.0}, {0.2, 0.0}, {0.0, 0.0}, {0.2, 0.0}};
  std::vector<Intent> intents{Intent::transmit(0, {}), Intent::transmit(0, {}),
                              Intent::listen(0), Intent::listen(0)};
  std::vector<Reception> rx;
  Medium medium(p, 1);
  medium.resolveSlot(pos, intents, rx);
  EXPECT_TRUE(std::isfinite(rx[2].totalPower));
  EXPECT_FALSE(rx[3].received);  // co-located listener: two equal giants collide
  EXPECT_TRUE(std::isfinite(rx[3].totalPower));
}

TEST(MediumColocated, TinyButPositiveDistancesAreNotClamped) {
  // Distances far below kMinDistance must keep their exact physics
  // (the exponential-chain lower-bound instance depends on this).
  const SinrParams p;
  const double d = 1e-15;
  std::vector<Vec2> pos{{0.0, 0.0}, {d, 0.0}};
  std::vector<Intent> intents{Intent::transmit(0, {}), Intent::listen(0)};
  std::vector<Reception> rx;
  Medium medium(p, 1);
  medium.resolveSlot(pos, intents, rx);
  ASSERT_TRUE(rx[1].received);
  EXPECT_NEAR(rx[1].signalPower, p.rxPower(d), 1e-12 * p.rxPower(d));
}

// ---------------------------------------------------------------------------
// resolveSlot edge cases
// ---------------------------------------------------------------------------

TEST(MediumEdge, AllIdleSlot) {
  const SinrParams p;
  std::vector<Vec2> pos{{0, 0}, {0.5, 0}, {1, 0}};
  std::vector<Intent> intents(3, Intent::idle());
  std::vector<Reception> rx;
  Medium medium(p, 2);
  medium.resolveSlot(pos, intents, rx);
  for (const Reception& r : rx) {
    EXPECT_FALSE(r.received);
    EXPECT_EQ(r.totalPower, 0.0);
  }
  EXPECT_EQ(medium.stats().slots, 1u);
  EXPECT_EQ(medium.stats().transmissions, 0u);
  EXPECT_EQ(medium.stats().listens, 0u);
  EXPECT_EQ(medium.stats().decodes, 0u);
}

TEST(MediumEdge, ListenersOnSilentChannelObserveNothing) {
  const SinrParams p;
  std::vector<Vec2> pos{{0, 0}, {0.3, 0}, {0.6, 0}};
  // Transmitter on channel 0; both listeners tuned to silent channel 1.
  std::vector<Intent> intents{Intent::transmit(0, {}), Intent::listen(1), Intent::listen(1)};
  std::vector<Reception> rx;
  Medium medium(p, 2);
  medium.resolveSlot(pos, intents, rx);
  EXPECT_FALSE(rx[1].received);
  EXPECT_EQ(rx[1].totalPower, 0.0);
  EXPECT_FALSE(rx[2].received);
  EXPECT_EQ(rx[2].totalPower, 0.0);
  EXPECT_EQ(medium.stats().listens, 2u);
  EXPECT_EQ(medium.stats().decodes, 0u);
}

TEST(MediumEdge, SingleTransmitterAtExactTransmissionRange) {
  const SinrParams p;
  ASSERT_NEAR(p.transmissionRange(), 1.0, 1e-12);
  // SINR condition (1) uses >=, so a lone transmitter at exactly R_T decodes.
  std::vector<Vec2> pos{{0, 0}, {1.0, 0}};
  std::vector<Intent> intents{Intent::transmit(0, {}), Intent::listen(0)};
  std::vector<Reception> rx;
  Medium medium(p, 1);
  medium.resolveSlot(pos, intents, rx);
  ASSERT_TRUE(rx[1].received);
  EXPECT_NEAR(rx[1].senderDistance, 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// NearFar mode vs exact reference
// ---------------------------------------------------------------------------

TEST(MediumNearFar, CoincidentFarClusterMatchesExactExactly) {
  SinrParams exact;
  SinrParams approx = exact;
  approx.mediumMode = MediumMode::NearFar;

  // One decodable near transmitter plus a tight far cluster at distance 10:
  // the far cell's centroid coincides with its members, so the batched
  // contribution equals the exact sum.
  std::vector<Vec2> pos{{0, 0}, {0.5, 0}, {10, 0}, {10, 0}, {10, 0}};
  Message m;
  m.src = 1;
  std::vector<Intent> intents{Intent::listen(0), Intent::transmit(0, m),
                              Intent::transmit(0, {}), Intent::transmit(0, {}),
                              Intent::transmit(0, {})};
  std::vector<Reception> a, b;
  Medium mediumExact(exact, 1);
  Medium mediumApprox(approx, 1);
  mediumExact.resolveSlot(pos, intents, a);
  mediumApprox.resolveSlot(pos, intents, b);

  ASSERT_TRUE(a[0].received);
  ASSERT_TRUE(b[0].received);
  EXPECT_EQ(b[0].msg.src, 1);
  EXPECT_DOUBLE_EQ(a[0].totalPower, b[0].totalPower);
  EXPECT_DOUBLE_EQ(a[0].signalPower, b[0].signalPower);
}

TEST(MediumNearFar, RandomInstanceAgreesWithExact) {
  SinrParams exact;
  SinrParams approx = exact;
  approx.mediumMode = MediumMode::NearFar;

  const int n = 1500;
  Rng rng(7);
  auto pos = deployUniformSquare(n, 8.0, rng);  // extent >> nearField * R_T
  std::vector<Intent> intents(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto c = static_cast<ChannelId>(rng.below(2));
    intents[static_cast<std::size_t>(v)] =
        rng.bernoulli(0.1) ? Intent::transmit(c, {}) : Intent::listen(c);
  }
  std::vector<Reception> a, b;
  Medium mediumExact(exact, 2);
  Medium mediumApprox(approx, 2);
  mediumExact.resolveSlot(pos, intents, a);
  mediumApprox.resolveSlot(pos, intents, b);

  int listeners = 0;
  int decodeDisagreements = 0;
  for (int v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (intents[vi].action != Action::Listen) continue;
    ++listeners;
    if (a[vi].received != b[vi].received) {
      ++decodeDisagreements;
    } else if (a[vi].received) {
      EXPECT_EQ(a[vi].msg.src, b[vi].msg.src);
      // The decoded signal itself is summed exactly in both modes.
      EXPECT_DOUBLE_EQ(a[vi].signalPower, b[vi].signalPower);
    }
    // The batched far field is a second-order approximation of the
    // interference sum; the carrier-sense total must stay close.
    if (a[vi].totalPower > 0.0) {
      EXPECT_NEAR(b[vi].totalPower, a[vi].totalPower, 0.05 * a[vi].totalPower);
    }
  }
  ASSERT_GT(listeners, 0);
  // Decode decisions may differ only for SINR values inside the far-field
  // error band around beta: a rare event on a random instance.
  EXPECT_LE(decodeDisagreements, listeners / 100);
}

// ---------------------------------------------------------------------------
// Hierarchical far-field summation vs the exact reference
// ---------------------------------------------------------------------------

TEST(MediumHier, CoincidentFarClusterMatchesExactExactly) {
  SinrParams exact;
  SinrParams approx = exact;
  approx.mediumMode = MediumMode::Hierarchical;

  // One decodable near transmitter plus a tight far cluster at distance 10:
  // all cluster members share one position, so every pyramid level's
  // centroid coincides with them and the batched contribution equals the
  // exact sum no matter which level the admissibility rule picks.
  std::vector<Vec2> pos{{0, 0}, {0.5, 0}, {10, 0}, {10, 0}, {10, 0}};
  Message m;
  m.src = 1;
  std::vector<Intent> intents{Intent::listen(0), Intent::transmit(0, m),
                              Intent::transmit(0, {}), Intent::transmit(0, {}),
                              Intent::transmit(0, {})};
  std::vector<Reception> a, b;
  Medium mediumExact(exact, 1);
  Medium mediumApprox(approx, 1);
  mediumExact.resolveSlot(pos, intents, a);
  mediumApprox.resolveSlot(pos, intents, b);

  ASSERT_TRUE(a[0].received);
  ASSERT_TRUE(b[0].received);
  EXPECT_EQ(b[0].msg.src, 1);
  EXPECT_DOUBLE_EQ(a[0].totalPower, b[0].totalPower);
  EXPECT_DOUBLE_EQ(a[0].signalPower, b[0].signalPower);
}

/// Shared harness for the hierarchical error-bound tests: resolves one
/// random slot in Exact and Hierarchical modes and reports the worst
/// relative totalPower error plus the decode disagreement count.
struct HierVsExact {
  double maxRelErr = 0.0;
  int listeners = 0;
  int decodeDisagreements = 0;
};

HierVsExact compareHierToExact(double theta, int n, double side, std::uint64_t seed) {
  SinrParams exact;
  SinrParams approx = exact;
  approx.mediumMode = MediumMode::Hierarchical;
  approx.hierTheta = theta;

  Rng rng(seed);
  auto pos = deployUniformSquare(n, side, rng);
  std::vector<Intent> intents(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto c = static_cast<ChannelId>(rng.below(2));
    intents[static_cast<std::size_t>(v)] =
        rng.bernoulli(0.1) ? Intent::transmit(c, {}) : Intent::listen(c);
  }
  std::vector<Reception> a, b;
  Medium mediumExact(exact, 2);
  Medium mediumApprox(approx, 2);
  mediumExact.resolveSlot(pos, intents, a);
  mediumApprox.resolveSlot(pos, intents, b);

  HierVsExact r;
  for (int v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (intents[vi].action != Action::Listen) continue;
    ++r.listeners;
    if (a[vi].received != b[vi].received) {
      ++r.decodeDisagreements;
    } else if (a[vi].received) {
      EXPECT_EQ(a[vi].msg.src, b[vi].msg.src);
      // Near-field members are summed exactly in both modes, so the
      // decoded signal itself is bit-equal.
      EXPECT_DOUBLE_EQ(a[vi].signalPower, b[vi].signalPower);
    }
    if (a[vi].totalPower > 0.0) {
      r.maxRelErr = std::max(
          r.maxRelErr, std::abs(b[vi].totalPower - a[vi].totalPower) / a[vi].totalPower);
    }
  }
  return r;
}

TEST(MediumHier, RandomInstanceAgreesWithExact) {
  // Extent 12 >> nearRadius 2 forces multi-level batching (a 5-level
  // pyramid over the 1-unit base cells).
  const HierVsExact r = compareHierToExact(0.5, 2000, 12.0, 7);
  ASSERT_GT(r.listeners, 0);
  // The admissibility rule bounds each batched contribution's centroid
  // displacement by sqrt(2) * theta relative to its distance; with the
  // centroid cancelling the first-order term, the aggregate interference
  // error stays far inside 5% (the NearFar test's bound).
  EXPECT_LT(r.maxRelErr, 0.05);
  EXPECT_LE(r.decodeDisagreements, r.listeners / 100);
}

TEST(MediumHier, ThetaKnobTightensTheErrorBound) {
  // Smaller theta opens more cells: the far field is resolved finer and
  // the worst-case relative error must not grow.  theta = 1 is the
  // documented loose end of the knob; even there the error stays within
  // a usable envelope.
  const HierVsExact loose = compareHierToExact(1.0, 2000, 12.0, 7);
  const HierVsExact mid = compareHierToExact(0.5, 2000, 12.0, 7);
  const HierVsExact tight = compareHierToExact(0.2, 2000, 12.0, 7);
  ASSERT_GT(loose.listeners, 0);
  EXPECT_LE(tight.maxRelErr, mid.maxRelErr * 1.01 + 1e-12);
  EXPECT_LE(mid.maxRelErr, loose.maxRelErr * 1.01 + 1e-12);
  EXPECT_LT(loose.maxRelErr, 0.15);
  EXPECT_LT(tight.maxRelErr, 0.02);
}

TEST(MediumHier, DynamicPositionsPathStaysWithinBounds) {
  // setDynamicPositions reroutes pyramid construction through the shared
  // incremental allGrid_; the cell partition differs from the static
  // per-channel grids, but the admissibility bound is geometry-independent
  // so accuracy must hold all the same.
  SinrParams exact;
  SinrParams approx = exact;
  approx.mediumMode = MediumMode::Hierarchical;

  const int n = 1200;
  Rng rng(19);
  auto pos = deployUniformSquare(n, 10.0, rng);
  std::vector<Intent> intents(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto c = static_cast<ChannelId>(rng.below(2));
    intents[static_cast<std::size_t>(v)] =
        rng.bernoulli(0.1) ? Intent::transmit(c, {}) : Intent::listen(c);
  }
  Medium mediumExact(exact, 2);
  Medium dynamicHier(approx, 2);
  dynamicHier.setDynamicPositions(true);
  std::vector<Reception> a, b;
  for (int slot = 0; slot < 3; ++slot) {
    // Small per-slot drift keeps the incremental update() path engaged.
    for (Vec2& p : pos) {
      p.x += 1e-4 * (2.0 * rng.uniform() - 1.0);
      p.y += 1e-4 * (2.0 * rng.uniform() - 1.0);
    }
    mediumExact.resolveSlot(pos, intents, a);
    dynamicHier.resolveSlot(pos, intents, b);
    int decodeDisagreements = 0;
    int listeners = 0;
    for (int v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (intents[vi].action != Action::Listen) continue;
      ++listeners;
      decodeDisagreements += a[vi].received != b[vi].received;
      if (a[vi].totalPower > 0.0) {
        EXPECT_NEAR(b[vi].totalPower, a[vi].totalPower, 0.05 * a[vi].totalPower);
      }
    }
    ASSERT_GT(listeners, 0);
    EXPECT_LE(decodeDisagreements, listeners / 100);
  }
}

TEST(MediumHier, FadingRunsAreDeterministicPerKey) {
  // Far-cell fading gains are shared per (slot, level, cell, listener)
  // draw; two media with the same key must produce identical slots.
  SinrParams p;
  p.mediumMode = MediumMode::Hierarchical;
  p.fading.model = FadingModel::Rayleigh;
  const int n = 600;
  Rng rng(23);
  auto pos = deployUniformSquare(n, 6.0, rng);
  std::vector<Intent> intents(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    intents[static_cast<std::size_t>(v)] =
        rng.bernoulli(0.1) ? Intent::transmit(0, {}) : Intent::listen(0);
  }
  Medium m1(p, 1);
  Medium m2(p, 1);
  m1.seedFading(42);
  m2.seedFading(42);
  std::vector<Reception> a, b;
  for (int slot = 0; slot < 2; ++slot) {
    m1.resolveSlot(pos, intents, a);
    m2.resolveSlot(pos, intents, b);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].received, b[i].received);
      EXPECT_EQ(a[i].totalPower, b[i].totalPower);
    }
  }
  EXPECT_GT(m1.stats().decodes, 0u);
}

// ---------------------------------------------------------------------------
// Threaded execution vs single-threaded reference
// ---------------------------------------------------------------------------

TEST(MediumThreads, ResultsBitIdenticalToSingleThread) {
  for (const MediumMode mode :
       {MediumMode::Exact, MediumMode::NearFar, MediumMode::Hierarchical}) {
    SinrParams p;
    p.mediumMode = mode;
    const int n = 800;
    Rng rng(11);
    auto pos = deployUniformSquare(n, 3.0, rng);
    std::vector<Intent> intents(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      const auto c = static_cast<ChannelId>(rng.below(4));
      intents[static_cast<std::size_t>(v)] =
          rng.bernoulli(0.08) ? Intent::transmit(c, {}) : Intent::listen(c);
    }
    Medium serial(p, 4, 1);
    Medium threaded(p, 4, 4);
    EXPECT_EQ(threaded.numThreads(), 4);
    std::vector<Reception> a, b;
    for (int slot = 0; slot < 3; ++slot) {
      serial.resolveSlot(pos, intents, a);
      threaded.resolveSlot(pos, intents, b);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].received, b[i].received);
        EXPECT_EQ(a[i].totalPower, b[i].totalPower);
        EXPECT_EQ(a[i].signalPower, b[i].signalPower);
        EXPECT_EQ(a[i].sinr, b[i].sinr);
        EXPECT_EQ(a[i].senderDistance, b[i].senderDistance);
      }
    }
    EXPECT_EQ(serial.stats().decodes, threaded.stats().decodes);
    EXPECT_EQ(serial.stats().listens, threaded.stats().listens);
  }
}

TEST(ThreadPool, ChunksPartitionExactly) {
  for (const std::size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    for (const int lanes : {1, 2, 3, 8}) {
      std::size_t covered = 0;
      std::size_t prevEnd = 0;
      for (int lane = 0; lane < lanes; ++lane) {
        const auto [begin, end] = ThreadPool::chunk(n, lanes, lane);
        EXPECT_EQ(begin, prevEnd);
        EXPECT_LE(begin, end);
        covered += end - begin;
        prevEnd = end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prevEnd, n);
    }
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallelFor(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reusable for subsequent jobs.
  std::atomic<std::size_t> total{0};
  pool.parallelFor(100, [&](std::size_t b, std::size_t e) { total += e - b; });
  EXPECT_EQ(total.load(), 100u);
}

}  // namespace
}  // namespace mcs
