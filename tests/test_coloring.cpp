#include <gtest/gtest.h>

#include <set>

#include "test_support.h"

namespace mcs {
namespace {

class ColoringSeeds : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ColoringSeeds, ProperAndComplete) {
  const auto [channels, seed] = GetParam();
  test::BuiltStructure b(350, 1.2, channels, seed);
  const ColoringResult res = runColoring(b.sim, b.s);
  EXPECT_TRUE(res.complete);
  for (NodeId v = 0; v < b.net.size(); ++v) {
    EXPECT_GE(res.colorOf[static_cast<std::size_t>(v)], 0) << "node " << v << " uncolored";
  }
  EXPECT_EQ(countColoringViolations(b.net, res.colorOf), 0);
  // O(Delta) colors: phi * (max cluster size + 1) distinct classes is the
  // design bound.  (colorsUsed, the max index, can be inflated by the
  // rare orphan overflow band without growing the class count.)
  const auto sizes = test::trueClusterSizes(b.net, b.s.clustering);
  int maxCluster = 0;
  for (const int s : sizes) maxCluster = std::max(maxCluster, s);
  std::set<int> classes;
  for (const int c : res.colorOf) {
    if (c >= 0) classes.insert(c);
  }
  EXPECT_LE(static_cast<int>(classes.size()), b.s.tdma.period * (maxCluster + 2));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColoringSeeds,
                         ::testing::Combine(::testing::Values(1, 8),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(Coloring, WithinClusterColorsDistinct) {
  test::BuiltStructure b(300, 1.2, 4, 7);
  const ColoringResult res = runColoring(b.sim, b.s);
  ASSERT_TRUE(res.complete);
  std::vector<std::set<int>> used(static_cast<std::size_t>(b.net.size()));
  for (NodeId v = 0; v < b.net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const NodeId d = b.s.clustering.dominatorOf[vi];
    auto [it, fresh] = used[static_cast<std::size_t>(d)].insert(res.colorOf[vi]);
    EXPECT_TRUE(fresh) << "duplicate color " << res.colorOf[vi] << " in cluster " << d;
  }
}

TEST(Coloring, ColorsEncodeClusterColor) {
  // color mod phi == the node's cluster TDMA color (the §7 layout).
  test::BuiltStructure b(300, 1.2, 4, 9);
  const ColoringResult res = runColoring(b.sim, b.s);
  ASSERT_TRUE(res.complete);
  const int phi = b.s.tdma.period;
  for (NodeId v = 0; v < b.net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    EXPECT_EQ(res.colorOf[vi] % phi, b.s.tdma.colorOfNode[vi]);
  }
}

TEST(Coloring, DominatorsTakeBaseColor) {
  test::BuiltStructure b(250, 1.2, 4, 11);
  const ColoringResult res = runColoring(b.sim, b.s);
  for (const NodeId d : b.s.clustering.dominators) {
    const auto di = static_cast<std::size_t>(d);
    EXPECT_EQ(res.colorOf[di], b.s.tdma.colorOfNode[di]);
  }
}

TEST(Coloring, CostsRecorded) {
  test::BuiltStructure b(250, 1.2, 4, 13);
  const ColoringResult res = runColoring(b.sim, b.s);
  EXPECT_GT(res.costs.uplink, 0u);
  EXPECT_GT(res.costs.tree, 0u);
  EXPECT_GT(res.costs.broadcast, 0u);
}

TEST(Coloring, Deterministic) {
  const auto run = [] {
    test::BuiltStructure b(200, 1.2, 4, 15);
    return runColoring(b.sim, b.s).colorOf;
  };
  EXPECT_EQ(run(), run());
}

TEST(Coloring, SparseNetworkTrivialColors) {
  // Isolated nodes: every node is its own dominator, color = cluster color.
  std::vector<Vec2> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({2.0 * i, 0.0});
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 2, 16);
  const AggregationStructure s = buildStructure(sim);
  const ColoringResult res = runColoring(sim, s);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(countColoringViolations(net, res.colorOf), 0);
}

}  // namespace
}  // namespace mcs
