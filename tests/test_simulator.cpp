#include <gtest/gtest.h>

#include "test_support.h"

namespace mcs {
namespace {

TEST(Simulator, SlotCounting) {
  Network net({{0, 0}, {0.5, 0}}, SinrParams{});
  Simulator sim(net, 2, 1);
  EXPECT_EQ(sim.slots(), 0u);
  for (int i = 0; i < 5; ++i) {
    sim.step([](NodeId) { return Intent::idle(); }, [](NodeId, const Reception&) {});
  }
  EXPECT_EQ(sim.slots(), 5u);
}

TEST(Simulator, ListenersGetCallbacks) {
  Network net({{0, 0}, {0.5, 0}}, SinrParams{});
  Simulator sim(net, 1, 1);
  int callbacks = 0;
  sim.step(
      [](NodeId v) {
        return v == 0 ? Intent::transmit(0, {}) : Intent::listen(0);
      },
      [&](NodeId v, const Reception& r) {
        EXPECT_EQ(v, 1);
        EXPECT_TRUE(r.received);
        ++callbacks;
      });
  EXPECT_EQ(callbacks, 1);
}

TEST(Simulator, PerNodeRngsDiffer) {
  Network net({{0, 0}, {0.5, 0}, {0.2, 0.2}}, SinrParams{});
  Simulator sim(net, 1, 9);
  const auto a = sim.rng(0)();
  const auto b = sim.rng(1)();
  const auto c = sim.rng(2)();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Simulator, SeedDeterminism) {
  const auto run = [](std::uint64_t seed) {
    Network net = test::makeUniformNetwork(50, 1.0, 3);
    Simulator sim(net, 2, seed);
    std::uint64_t decodes = 0;
    for (int t = 0; t < 50; ++t) {
      sim.step(
          [&](NodeId v) {
            return sim.rng(v).bernoulli(0.2)
                       ? Intent::transmit(static_cast<ChannelId>(v % 2), {})
                       : Intent::listen(static_cast<ChannelId>(v % 2));
          },
          [&](NodeId, const Reception& r) { decodes += r.received; });
    }
    return decodes;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // overwhelmingly likely
}

TEST(Simulator, SafetyCapThrows) {
  Tuning tun;
  tun.safetyCapSlots = 10;
  Network net({{0, 0}, {0.5, 0}}, SinrParams{}, tun);
  Simulator sim(net, 1, 1);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          sim.step([](NodeId) { return Intent::idle(); }, [](NodeId, const Reception&) {});
        }
      },
      std::runtime_error);
}

TEST(Simulator, MediumStatsExposed) {
  Network net({{0, 0}, {0.5, 0}}, SinrParams{});
  Simulator sim(net, 1, 1);
  sim.step([](NodeId v) { return v == 0 ? Intent::transmit(0, {}) : Intent::listen(0); },
           [](NodeId, const Reception&) {});
  EXPECT_EQ(sim.mediumStats().transmissions, 1u);
  EXPECT_EQ(sim.mediumStats().decodes, 1u);
}

}  // namespace
}  // namespace mcs
