#include <gtest/gtest.h>

#include "proto/cluster_coloring.h"
#include "proto/dominating_set.h"
#include "test_support.h"

namespace mcs {
namespace {

class ClusterColoringSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterColoringSeeds, SeparationAndCompleteness) {
  const std::uint64_t seed = GetParam();
  Network net = test::makeUniformNetwork(350, 1.3, seed);
  Simulator sim(net, 4, seed + 7);
  DominatingSetResult ds = buildDominatingSet(sim);
  Clustering& cl = ds.clustering;
  const ClusterColoringResult cc = colorClusters(sim, cl);

  // Every dominator colored in [0, numColors).
  for (const NodeId d : cl.dominators) {
    const int c = cl.colorOfCluster[static_cast<std::size_t>(d)];
    ASSERT_GE(c, 0);
    ASSERT_LT(c, cl.numColors);
  }
  // Non-dominators carry no color.
  for (NodeId v = 0; v < net.size(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!cl.isDominator[vi]) {
      EXPECT_EQ(cl.colorOfCluster[vi], -1);
    }
  }
  // Same color => farther than R_{eps/2} apart; allow at most one missed
  // pair (verification is probabilistic).
  EXPECT_LE(test::colorSeparationViolations(net, cl), 1);

  // Number of colors bounded by the packing bound times slack.
  EXPECT_LE(cl.numColors, packingBound(net.rEpsHalf(), net.rc()));
  EXPECT_EQ(cc.phases, cl.numColors);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterColoringSeeds, ::testing::Values(1u, 2u, 3u, 4u));

TEST(ClusterColoring, SingleClusterOneColor) {
  Rng rng(3);
  auto pts = deployUniformDisk(50, 0.04, rng);
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 1, 4);
  DominatingSetResult ds = buildDominatingSet(sim);
  colorClusters(sim, ds.clustering);
  EXPECT_GE(ds.clustering.numColors, 1);
  EXPECT_LE(ds.clustering.numColors, 3);
}

TEST(ClusterColoring, TdmaScheduleFromClustering) {
  Network net = test::makeUniformNetwork(200, 1.2, 5);
  Simulator sim(net, 2, 6);
  DominatingSetResult ds = buildDominatingSet(sim);
  colorClusters(sim, ds.clustering);
  const TdmaSchedule tdma = TdmaSchedule::from(ds.clustering);
  EXPECT_EQ(tdma.period, ds.clustering.numColors);
  // A node is active exactly once per period.
  for (NodeId v = 0; v < net.size(); v += 17) {
    int activeCount = 0;
    for (long r = 0; r < tdma.period; ++r) activeCount += tdma.active(v, r);
    EXPECT_EQ(activeCount, 1);
    // And its active round matches its cluster's color.
    EXPECT_TRUE(tdma.active(v, ds.clustering.clusterColorOf(v)));
  }
}

TEST(ClusterColoring, PackingBoundSanity) {
  EXPECT_GE(packingBound(1.0, 0.5), 4);
  EXPECT_GE(packingBound(1.0, 0.1), packingBound(1.0, 0.5));
  EXPECT_EQ(packingBound(1.0, 0.0), 1);  // degenerate input guarded
}

}  // namespace
}  // namespace mcs
