// Exact-mode bit-reproducibility locks.
//
// The golden hashes below were captured from the pre-SoA-refactor Medium
// (the seed implementation with the scalar per-pair loop) and must never
// change: they pin the contract that MediumMode::Exact results are
// bit-identical across refactors, optimization levels, and thread counts.
// If a change legitimately needs to break them (e.g. an intentional model
// change), that is a documented compatibility break, not a refresh.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "geom/deployment.h"
#include "sinr/medium.h"
#include "util/rng.h"

namespace mcs {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// Hashes every Reception bit pattern over `slots` Exact-mode slots of a
/// fixed workload: n=600 uniform nodes, 8% transmitters, 2% idlers.  The
/// recipe (deployment, intent draws, fading key) must stay frozen — it
/// is what the golden constants were captured against.
std::uint64_t hashExactSlots(double alpha, int channels, FadingModel fading, int slots,
                             int threads) {
  SinrParams p;
  p.alpha = alpha;
  p = p.withRange(1.0);
  p.fading.model = fading;
  Rng rng(12345);
  const int n = 600;
  const auto pos = deployUniformSquare(n, 2.0, rng);
  std::vector<Intent> intents(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto c = static_cast<ChannelId>(rng.below(static_cast<std::uint64_t>(channels)));
    if (rng.bernoulli(0.08)) {
      Message msg;
      msg.type = MsgType::Data;
      msg.src = v;
      intents[static_cast<std::size_t>(v)] = Intent::transmit(c, msg);
    } else if (rng.bernoulli(0.1)) {
      intents[static_cast<std::size_t>(v)] = Intent::idle();
    } else {
      intents[static_cast<std::size_t>(v)] = Intent::listen(c);
    }
  }
  Medium medium(p, channels, threads);
  medium.seedFading(987654321ull);
  std::vector<Reception> rx;
  std::uint64_t h = 1469598103934665603ull;
  for (int s = 0; s < slots; ++s) {
    medium.resolveSlot(pos, intents, rx);
    for (const Reception& r : rx) {
      h = fnv1a(h, r.received ? 1 : 0);
      h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(r.msg.src)));
      h = fnv1a(h, bits(r.totalPower));
      h = fnv1a(h, bits(r.signalPower));
      h = fnv1a(h, bits(r.sinr));
      h = fnv1a(h, bits(r.senderDistance));
    }
  }
  return h;
}

TEST(MediumGolden, ExactAlpha3FourChannels) {
  EXPECT_EQ(hashExactSlots(3.0, 4, FadingModel::None, 3, 1), 0x67ab07fc693655a4ull);
}

TEST(MediumGolden, ExactHalfIntegerAlpha) {
  EXPECT_EQ(hashExactSlots(2.5, 2, FadingModel::None, 3, 1), 0xfba84415461a7a81ull);
}

TEST(MediumGolden, ExactIrrationalAlphaPowFallback) {
  EXPECT_EQ(hashExactSlots(3.14159, 1, FadingModel::None, 3, 1), 0x7a614bc18a0d8433ull);
}

TEST(MediumGolden, ExactRayleighFading) {
  EXPECT_EQ(hashExactSlots(3.0, 4, FadingModel::Rayleigh, 3, 1), 0x85d2bd60cae7e745ull);
}

TEST(MediumGolden, ExactCompositeFadingAlpha4) {
  EXPECT_EQ(hashExactSlots(4.0, 8, FadingModel::RayleighLognormal, 3, 1),
            0x26cb6c57222b3dd4ull);
}

TEST(MediumGolden, ExactThreadedMatchesSerialGolden) {
  EXPECT_EQ(hashExactSlots(3.0, 4, FadingModel::None, 3, 4), 0x67ab07fc693655a4ull);
}

// The SoA sweep evaluates path loss through PowerKernel::batch; the
// contract is per-element bit-identity with the scalar operator() for
// every exponent class (whole, half-integer, quarter, and the std::pow
// fallback).
TEST(MediumGolden, KernelBatchBitIdenticalToScalar) {
  Rng rng(777);
  std::vector<double> d2(1537);  // odd length: exercises the tail
  for (double& v : d2) v = 1e-6 + 100.0 * rng.uniform();
  std::vector<double> out(d2.size());
  for (const double alpha : {0.5, 1.0, 2.5, 3.0, 3.5, 4.0, 5.25, 6.0, 9.5, 12.0, 17.0,
                             3.14159, 2.000001}) {
    const PowerKernel kern(1.7, alpha);
    kern.batch(d2.data(), out.data(), d2.size());
    for (std::size_t i = 0; i < d2.size(); ++i) {
      ASSERT_EQ(bits(out[i]), bits(kern(d2[i])))
          << "alpha=" << alpha << " i=" << i << " d2=" << d2[i];
    }
  }
}

// The channel-range check must survive Release builds (plain asserts
// compile out, which would leave out-of-bounds indexing in -DNDEBUG).
TEST(MediumGoldenDeathTest, OutOfRangeChannelAbortsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SinrParams p;
  Medium medium(p, 2);
  const std::vector<Vec2> pos{{0.0, 0.0}, {1.0, 0.0}};
  std::vector<Intent> intents{Intent::listen(0), Intent::listen(0)};
  intents[1].channel = 7;  // out of [0, 2)
  std::vector<Reception> rx;
  EXPECT_DEATH(medium.resolveSlot(pos, intents, rx), "channel 7");
}

}  // namespace
}  // namespace mcs
