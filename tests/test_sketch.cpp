// Determinism and accuracy contract of the quantile sketch
// (util/sketch.h): the campaign pipeline is allowed to ship sketch
// state over RESULT frames and fold it in arrival order only because
// merging is bit-identical under any order, and the store may answer
// p50/p95 from it only because the relative-error bound actually holds
// on unfriendly distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/sketch.h"
#include "util/stats.h"

using namespace mcs;

namespace {

/// The rank convention the sketch documents: the order statistic at
/// rank floor(q*(n-1) + 0.5).
double rankStatistic(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::floor(q * static_cast<double>(xs.size() - 1) + 0.5));
  return xs[std::min(rank, xs.size() - 1)];
}

void expectWithinAlpha(const QuantileSketch& sk, const std::vector<double>& xs, double q) {
  const double ref = rankStatistic(xs, q);
  const double got = sk.quantile(q);
  EXPECT_NEAR(got, ref, sk.alpha() * std::abs(ref) + 1e-12)
      << "q=" << q << " ref=" << ref << " got=" << got;
}

void expectBoundOnDistribution(const std::vector<double>& xs) {
  QuantileSketch sk;
  for (double x : xs) sk.add(x);
  ASSERT_EQ(sk.count(), xs.size());
  for (double q : {0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    expectWithinAlpha(sk, xs, q);
  }
}

}  // namespace

TEST(QuantileSketch, BoundHoldsOnConstantDistribution) {
  expectBoundOnDistribution(std::vector<double>(5000, 7.25));
}

TEST(QuantileSketch, BoundHoldsOnBimodalDistribution) {
  // Two tight modes three decades apart — the classic case where a
  // uniform-bin histogram falls over.
  Rng rng(20250808);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(i % 2 == 0 ? rng.uniform(0.9, 1.1) : rng.uniform(900.0, 1100.0));
  }
  expectBoundOnDistribution(xs);
}

TEST(QuantileSketch, BoundHoldsOnHeavyTailDistribution) {
  // Pareto-ish tail: x = u^(-1.5) spans many orders of magnitude.
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 6000; ++i) {
    xs.push_back(std::pow(rng.uniform(1e-6, 1.0), -1.5));
  }
  expectBoundOnDistribution(xs);
}

TEST(QuantileSketch, BoundHoldsWithNegativeAndZeroValues) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) {
    const double mag = std::exp(rng.uniform(-5.0, 5.0));
    xs.push_back(i % 3 == 0 ? -mag : mag);
    if (i % 17 == 0) xs.push_back(0.0);
  }
  expectBoundOnDistribution(xs);
}

TEST(QuantileSketch, MergeIsOrderAndShapeInvariant) {
  // One stream, sliced into 8 shards; sequential fold, reversed fold,
  // and a binary tree must all land on the identical canonical state —
  // not merely close, the same bucket vectors.
  Rng rng(1234);
  std::vector<QuantileSketch> shards(8, QuantileSketch{});
  std::vector<double> all;
  for (int i = 0; i < 8000; ++i) {
    const double x = rng.uniform(-50.0, 50.0) * std::exp(rng.uniform(-3.0, 3.0));
    all.push_back(x);
    shards[static_cast<std::size_t>(i) % 8].add(x);
  }

  QuantileSketch sequential;
  for (const QuantileSketch& s : shards) sequential.merge(s);

  QuantileSketch reversed;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) reversed.merge(*it);

  std::vector<QuantileSketch> level = shards;
  while (level.size() > 1) {
    std::vector<QuantileSketch> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      QuantileSketch m = level[i];
      m.merge(level[i + 1]);
      next.push_back(std::move(m));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  const QuantileSketch& tree = level.front();

  EXPECT_TRUE(sequential == reversed);
  EXPECT_TRUE(sequential == tree);
  for (double q : {0.01, 0.5, 0.95, 0.99}) {
    // Bit equality, not tolerance: quantile() is a pure function of the
    // canonical state.
    EXPECT_EQ(sequential.quantile(q), tree.quantile(q));
    expectWithinAlpha(sequential, all, q);
  }
}

TEST(QuantileSketch, StateRoundTripsThroughFromState) {
  Rng rng(99);
  QuantileSketch sk;
  for (int i = 0; i < 500; ++i) sk.add(rng.uniform(-10.0, 10.0));
  const QuantileSketch back = QuantileSketch::fromState(
      sk.alpha(), sk.zeroCount(), sk.negativeBuckets(), sk.positiveBuckets());
  EXPECT_TRUE(sk == back);
  EXPECT_EQ(sk.count(), back.count());
  EXPECT_EQ(sk.quantile(0.5), back.quantile(0.5));
}

TEST(QuantileSketch, MergingMismatchedAlphaIsFatal) {
  QuantileSketch a(0.01), b(0.02);
  a.add(1.0);
  b.add(2.0);
  EXPECT_DEATH(a.merge(b), "alpha");
}

TEST(StreamingQuantiles, ExactModeMatchesQuantileSortedBitwise) {
  Rng rng(5);
  std::vector<double> xs;
  StreamingQuantiles sq;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    xs.push_back(x);
    sq.add(x);
  }
  ASSERT_FALSE(sq.sketchMode());
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 1.0}) {
    EXPECT_EQ(sq.quantile(q), quantileSorted(sorted, q));
  }
  EXPECT_EQ(sq.sortedExactValues(), sorted);
}

TEST(StreamingQuantiles, SpillBoundaryIsInsertionOrderInvariant) {
  // The same multiset pushed across the exact->sketch boundary in
  // forward and reverse order must spill to the identical sketch.
  const std::size_t threshold = 64;
  std::vector<double> xs;
  Rng rng(31337);
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform(0.1, 1000.0));

  StreamingQuantiles fwd(QuantileSketch::kDefaultAlpha, threshold);
  for (double x : xs) fwd.add(x);
  StreamingQuantiles rev(QuantileSketch::kDefaultAlpha, threshold);
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) rev.add(*it);

  ASSERT_TRUE(fwd.sketchMode());
  ASSERT_TRUE(rev.sketchMode());
  EXPECT_TRUE(fwd.sketch() == rev.sketch());
  EXPECT_EQ(fwd.quantile(0.5), rev.quantile(0.5));
}

TEST(StreamingQuantiles, MergeModeDependsOnTotalCountOnly) {
  // Two exact-mode halves whose union exceeds the threshold: the merge
  // must spill and equal the single-stream result exactly.
  const std::size_t threshold = 100;
  std::vector<double> xs;
  Rng rng(8);
  for (int i = 0; i < 160; ++i) xs.push_back(rng.uniform(-5.0, 5.0));

  StreamingQuantiles whole(QuantileSketch::kDefaultAlpha, threshold);
  for (double x : xs) whole.add(x);

  StreamingQuantiles left(QuantileSketch::kDefaultAlpha, threshold);
  StreamingQuantiles right(QuantileSketch::kDefaultAlpha, threshold);
  for (std::size_t i = 0; i < xs.size(); ++i) (i < 80 ? left : right).add(xs[i]);
  ASSERT_FALSE(left.sketchMode());
  ASSERT_FALSE(right.sketchMode());

  left.merge(right);
  ASSERT_TRUE(whole.sketchMode());
  ASSERT_TRUE(left.sketchMode());
  EXPECT_TRUE(left.sketch() == whole.sketch());
  EXPECT_EQ(left.quantile(0.95), whole.quantile(0.95));

  // Below the threshold the merge stays exact and canonical.
  StreamingQuantiles a(QuantileSketch::kDefaultAlpha, threshold);
  StreamingQuantiles b(QuantileSketch::kDefaultAlpha, threshold);
  for (int i = 0; i < 30; ++i) a.add(xs[static_cast<std::size_t>(i)]);
  for (int i = 30; i < 60; ++i) b.add(xs[static_cast<std::size_t>(i)]);
  a.merge(b);
  ASSERT_FALSE(a.sketchMode());
  EXPECT_EQ(a.count(), 60u);
}

TEST(StreamingStats, SummaryReproducesSummarizeBitwise) {
  Rng rng(2718);
  std::vector<double> xs;
  StreamingStats s;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    xs.push_back(x);
    s.add(x);
  }
  const Summary a = s.summary();
  const Summary b = summarize(xs);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.ci95, b.ci95);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.max, b.max);
}
