#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scenario/driver.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

/// The protocol driver layer: one driver per ProtocolKind, uniform
/// seed-determinism and thread-count-invariance guarantees, per-protocol
/// spec constraints, and the generic named-metric surface.
namespace mcs {
namespace {

/// Small, fast spec for one protocol kind (sized for CI).
ScenarioSpec specFor(ProtocolKind kind) {
  ScenarioSpec spec;
  spec.protocol = kind;
  spec.name = "drv_" + toString(kind);
  spec.deployment.kind = DeploymentKind::UniformSquare;
  spec.deployment.n = 100;
  spec.deployment.side = 1.0;
  spec.channels = 4;
  spec.seeds = 2;
  spec.seed0 = 7;
  switch (kind) {
    case ProtocolKind::Aloha:
      spec.channels = 1;
      break;
    case ProtocolKind::RulingSet:
    case ProtocolKind::DominatingSet:
      spec.channels = 1;
      spec.deployment.side = 1.2;
      break;
    case ProtocolKind::ChainBaseline:
      spec.deployment.kind = DeploymentKind::ExponentialChain;
      spec.deployment.n = 24;
      spec.deployment.chainBase = 2.0;
      spec.deployment.chainMaxGap = 0.9;
      spec.chainTrials = 60;
      break;
    default:
      break;
  }
  return spec;
}

// ---------------------------------------------------------------- registry

TEST(ProtocolDrivers, EveryKindHasADriverWithDescription) {
  const std::vector<ProtocolKind> kinds = allProtocolKinds();
  ASSERT_EQ(kinds.size(), static_cast<std::size_t>(kNumProtocolKinds));
  for (const ProtocolKind kind : kinds) {
    const ProtocolDriver& driver = protocolDriver(kind);
    EXPECT_EQ(driver.kind(), kind);
    EXPECT_STRNE(driver.description(), "") << toString(kind);
    // The canonical name round-trips through the spec parser.
    ScenarioSpec spec;
    std::string err;
    ASSERT_TRUE(applyScenarioKey(spec, "protocol", toString(kind), err)) << err;
    EXPECT_EQ(spec.protocol, kind);
  }
}

TEST(ProtocolDrivers, RegistryCoversEveryProtocolKind) {
  bool seen[kNumProtocolKinds] = {};
  for (const std::string& name : ScenarioRegistry::names()) {
    ScenarioSpec spec;
    ASSERT_TRUE(ScenarioRegistry::find(name, spec));
    seen[static_cast<std::size_t>(spec.protocol)] = true;
  }
  for (int k = 0; k < kNumProtocolKinds; ++k) {
    EXPECT_TRUE(seen[k]) << "no preset runs protocol "
                         << toString(static_cast<ProtocolKind>(k));
  }
}

TEST(ProtocolDrivers, PresetDescriptionsAreDiscoverable) {
  for (const ScenarioPresetInfo& info : ScenarioRegistry::list()) {
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_EQ(ScenarioRegistry::describe(info.name), info.description);
  }
  EXPECT_EQ(ScenarioRegistry::describe("no_such_preset"), "");
}

// --------------------------------------------------------------- contracts

TEST(ProtocolDrivers, EveryKindIsSeedDeterministic) {
  for (const ProtocolKind kind : allProtocolKinds()) {
    const ScenarioSpec spec = specFor(kind);
    ASSERT_EQ(validateScenario(spec), "") << toString(kind);
    const SeedResult a = runScenarioSeed(spec, spec.seed0);
    const SeedResult b = runScenarioSeed(spec, spec.seed0);
    ASSERT_TRUE(a.error.empty()) << toString(kind) << ": " << a.error;
    EXPECT_FALSE(a.metrics.empty()) << toString(kind);
    EXPECT_EQ(a.slots, b.slots) << toString(kind);
    EXPECT_EQ(a.decodes, b.decodes) << toString(kind);
    EXPECT_EQ(a.structureSlots, b.structureSlots) << toString(kind);
    EXPECT_EQ(a.delivered, b.delivered) << toString(kind);
    EXPECT_EQ(a.validity, b.validity) << toString(kind);
    EXPECT_TRUE(a.metrics == b.metrics) << toString(kind);
  }
}

TEST(ProtocolDrivers, EveryKindIsThreadCountInvariant) {
  for (const ProtocolKind kind : allProtocolKinds()) {
    const ScenarioSpec spec = specFor(kind);
    const ScenarioBatchResult seq = runScenarioBatch(spec, 1);
    const ScenarioBatchResult par = runScenarioBatch(spec, 4);
    ASSERT_EQ(seq.perSeed.size(), par.perSeed.size()) << toString(kind);
    for (std::size_t i = 0; i < seq.perSeed.size(); ++i) {
      const SeedResult& s = seq.perSeed[i];
      const SeedResult& p = par.perSeed[i];
      ASSERT_TRUE(s.error.empty()) << toString(kind) << ": " << s.error;
      EXPECT_EQ(s.seed, p.seed) << toString(kind);
      EXPECT_EQ(s.slots, p.slots) << toString(kind);
      EXPECT_EQ(s.decodes, p.decodes) << toString(kind);
      EXPECT_EQ(s.delivered, p.delivered) << toString(kind);
      EXPECT_EQ(s.validity, p.validity) << toString(kind);
      EXPECT_TRUE(s.metrics == p.metrics) << toString(kind);
    }
  }
}

TEST(ProtocolDrivers, AggregationOutcomesAreValidated) {
  const SeedResult r = runScenarioSeed(specFor(ProtocolKind::AggregateMax), 7);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.validity, OutcomeValidity::Valid);
  EXPECT_EQ(r.metricOr("agg_value"), r.metricOr("truth_value"));
}

TEST(ProtocolDrivers, ChainBaselineRespectsTheLowerBound) {
  const SeedResult r = runScenarioSeed(specFor(ProtocolKind::ChainBaseline), 7);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.delivered);
  // §1: at most one distinct descending sender per channel per slot.
  EXPECT_EQ(r.validity, OutcomeValidity::Valid);
  EXPECT_LE(r.metricOr("max_descending"), 4.0);
  EXPECT_EQ(r.metricOr("chain_trials"), 60.0);
}

// -------------------------------------------------------- spec constraints

TEST(ProtocolDrivers, ValidationEnforcesPerProtocolConstraints) {
  ScenarioSpec spec = specFor(ProtocolKind::ChainBaseline);
  spec.deployment.kind = DeploymentKind::UniformSquare;
  EXPECT_NE(validateScenario(spec), "");  // chain needs the chain deployment
  spec.deployment.kind = DeploymentKind::ExponentialChain;
  EXPECT_EQ(validateScenario(spec), "");
  spec.chainTrials = 0;
  EXPECT_NE(validateScenario(spec), "");

  spec = specFor(ProtocolKind::RulingSet);
  spec.rulingRounds = -1;
  EXPECT_NE(validateScenario(spec), "");
  spec.rulingRounds = 0;
  spec.rulingRadius = -0.5;
  EXPECT_NE(validateScenario(spec), "");
}

TEST(ProtocolDrivers, NewSpecKeysParse) {
  ScenarioSpec spec;
  std::string err;
  ASSERT_TRUE(applyScenarioKey(spec, "csa_variant", "large", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "ruling_radius", "0.2", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "ruling_rounds", "50", err)) << err;
  ASSERT_TRUE(applyScenarioKey(spec, "chain_trials", "10", err)) << err;
  EXPECT_EQ(spec.csaVariant, CsaVariant::Large);
  EXPECT_DOUBLE_EQ(spec.rulingRadius, 0.2);
  EXPECT_EQ(spec.rulingRounds, 50);
  EXPECT_EQ(spec.chainTrials, 10);
  EXPECT_FALSE(applyScenarioKey(spec, "csa_variant", "banana", err));
}

// ----------------------------------------------------------- metric surface

TEST(ProtocolDrivers, MetricMapPreservesOrderAndOverwrites) {
  MetricMap m;
  m.set("b", 2.0);
  m.set("a", 1.0);
  m.set("b", 3.0);  // overwrite keeps position
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.entries()[0].first, "b");
  EXPECT_EQ(m.entries()[0].second, 3.0);
  EXPECT_EQ(m.entries()[1].first, "a");
  EXPECT_EQ(m.find("zzz"), nullptr);
  EXPECT_EQ(m.getOr("zzz", -1.0), -1.0);
}

TEST(ProtocolDrivers, BatchSummarizesWallSecAndMetrics) {
  ScenarioSpec spec = specFor(ProtocolKind::AggregateMax);
  spec.seeds = 3;
  const ScenarioBatchResult batch = runScenarioBatch(spec, 3);
  EXPECT_EQ(batch.failures(), 0);
  const Summary wall = batch.summarizeWallSec();
  EXPECT_EQ(wall.count, 3u);
  EXPECT_GT(wall.mean, 0.0);
  const std::vector<std::string> names = batch.metricNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "agg_value"), names.end());
  EXPECT_EQ(batch.summarizeMetric("agg_value").count, 3u);
  EXPECT_EQ(batch.summarizeMetric("not_a_metric").count, 0u);
}

}  // namespace
}  // namespace mcs
