#include <gtest/gtest.h>

#include "test_support.h"

namespace mcs {
namespace {

std::vector<double> randomValues(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& x : values) x = rng.uniform(-100.0, 100.0);
  return values;
}

class AggregateEndToEnd
    : public ::testing::TestWithParam<std::tuple<int, AggKind, std::uint64_t>> {};

TEST_P(AggregateEndToEnd, EveryNodeLearnsTheAggregate) {
  const auto [channels, kind, seed] = GetParam();
  test::BuiltStructure b(350, 1.2, channels, seed);
  const auto values = randomValues(b.net.size(), seed * 7 + 1);
  const AggregateRun run = runAggregation(b.sim, b.s, values, kind);
  EXPECT_TRUE(run.delivered);
  const double truth = aggregateGroundTruth(values, kind);
  for (NodeId v = 0; v < b.net.size(); ++v) {
    EXPECT_NEAR(run.valueAtNode[static_cast<std::size_t>(v)], truth,
                1e-9 * std::max(1.0, std::abs(truth)));
  }
  EXPECT_GT(run.costs.uplink, 0u);
  EXPECT_GT(run.costs.broadcast, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregateEndToEnd,
    ::testing::Combine(::testing::Values(1, 4, 8),
                       ::testing::Values(AggKind::Max, AggKind::Min, AggKind::Sum),
                       ::testing::Values(1u, 2u)));

TEST(Aggregate, BuildAndAggregateMergesCosts) {
  Network net = test::makeUniformNetwork(250, 1.2, 3);
  Simulator sim(net, 4, 4);
  const auto values = randomValues(net.size(), 5);
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Max);
  EXPECT_TRUE(run.delivered);
  EXPECT_GT(run.costs.dominatingSet, 0u);
  EXPECT_GT(run.costs.clusterColoring, 0u);
  EXPECT_GT(run.costs.csa, 0u);
  EXPECT_GT(run.costs.reporters, 0u);
  EXPECT_EQ(run.costs.total(), run.costs.structureTotal() + run.costs.aggregationTotal());
}

TEST(Aggregate, GroundTruthHelper) {
  const std::vector<double> xs{3.0, -1.0, 2.0};
  EXPECT_EQ(aggregateGroundTruth(xs, AggKind::Max), 3.0);
  EXPECT_EQ(aggregateGroundTruth(xs, AggKind::Min), -1.0);
  EXPECT_EQ(aggregateGroundTruth(xs, AggKind::Sum), 4.0);
}

TEST(Aggregate, StructureIsReusable) {
  test::BuiltStructure b(300, 1.2, 4, 6);
  const auto v1 = randomValues(b.net.size(), 7);
  const auto v2 = randomValues(b.net.size(), 8);
  const AggregateRun r1 = runAggregation(b.sim, b.s, v1, AggKind::Max);
  const AggregateRun r2 = runAggregation(b.sim, b.s, v2, AggKind::Max);
  EXPECT_TRUE(r1.delivered);
  EXPECT_TRUE(r2.delivered);
  EXPECT_EQ(r1.valueAtNode[0], aggregateGroundTruth(v1, AggKind::Max));
  EXPECT_EQ(r2.valueAtNode[0], aggregateGroundTruth(v2, AggKind::Max));
}

TEST(Aggregate, DeterministicRuns) {
  const auto run = [] {
    Network net = test::makeUniformNetwork(200, 1.2, 9);
    Simulator sim(net, 4, 10);
    const auto values = randomValues(net.size(), 11);
    const AggregateRun r = buildAndAggregate(sim, values, AggKind::Sum);
    return std::make_pair(r.costs.total(), r.valueAtNode);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Aggregate, CorridorTopology) {
  // Large-diameter deployment exercises the backbone properly.
  Rng rng(13);
  auto pts = deployCorridor(500, 4.0, 0.4, rng);
  Network net(std::move(pts), SinrParams{});
  ASSERT_TRUE(net.graph().connected());
  Simulator sim(net, 4, 14);
  const auto values = randomValues(net.size(), 15);
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Max);
  EXPECT_TRUE(run.delivered);
}

TEST(Aggregate, ClusteredTopology) {
  Rng rng(17);
  auto pts = deployClustered(400, 6, 1.5, 0.15, rng);
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 8, 18);
  const auto values = randomValues(net.size(), 19);
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Max);
  // Clustered deployments may be disconnected; aggregation is then defined
  // per component and global delivery can fail — but with a connected
  // graph it must succeed.
  if (net.graph().connected()) {
    EXPECT_TRUE(run.delivered);
  }
}

TEST(Aggregate, PerturbedGridTopology) {
  Rng rng(21);
  auto pts = deployPerturbedGrid(400, 1.5, 0.4, rng);
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 4, 22);
  const auto values = randomValues(net.size(), 23);
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Min);
  EXPECT_TRUE(run.delivered);
}

TEST(Aggregate, UncertainSinrKnowledge) {
  // Nodes only know parameter ranges (§2); conservative choices must not
  // break correctness.
  Rng rng(25);
  auto pts = deployUniformSquare(300, 1.2, rng);
  const SinrParams truth{};
  const SinrBounds bounds = SinrBounds::around(truth, 0.15);
  Network net(std::move(pts), truth, Tuning{}, &bounds);
  Simulator sim(net, 4, 26);
  const auto values = randomValues(net.size(), 27);
  const AggregateRun run = buildAndAggregate(sim, values, AggKind::Max);
  EXPECT_TRUE(run.delivered);
}

}  // namespace
}  // namespace mcs
