#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/registry.h"
#include "sweep/check.h"
#include "sweep/expand.h"
#include "sweep/presets.h"
#include "sweep/report.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "util/json.h"

// The sweep campaign engine: axis parsing, grid expansion, sharding,
// resume, report round-trips, and the baseline perf gate.  The committed
// sweeps/ files and the golden report layout are locked against the
// source tree via MCS_SOURCE_DIR (defined in tests/CMakeLists.txt).
namespace mcs {
namespace {

std::vector<std::string> axis(const std::string& text) {
  std::vector<std::string> out;
  std::string err;
  EXPECT_TRUE(parseAxisValues(text, out, err)) << err;
  return out;
}

TEST(SweepAxis, CommaList) {
  EXPECT_EQ(axis("1000,4000,16000"), (std::vector<std::string>{"1000", "4000", "16000"}));
  EXPECT_EQ(axis("none, rayleigh"), (std::vector<std::string>{"none", "rayleigh"}));
  EXPECT_EQ(axis("solo"), (std::vector<std::string>{"solo"}));
}

TEST(SweepAxis, AdditiveRange) {
  EXPECT_EQ(axis("1:4"), (std::vector<std::string>{"1", "2", "3", "4"}));
  EXPECT_EQ(axis("1:9:+2"), (std::vector<std::string>{"1", "3", "5", "7", "9"}));
  EXPECT_EQ(axis("1:9:2"), (std::vector<std::string>{"1", "3", "5", "7", "9"}));
  EXPECT_EQ(axis("0:1:0.25"),
            (std::vector<std::string>{"0", "0.25", "0.5", "0.75", "1"}));
}

TEST(SweepAxis, GeometricRange) {
  EXPECT_EQ(axis("1:8:*2"), (std::vector<std::string>{"1", "2", "4", "8"}));
  EXPECT_EQ(axis("1:32:*2"), (std::vector<std::string>{"1", "2", "4", "8", "16", "32"}));
}

TEST(SweepAxis, Malformed) {
  std::vector<std::string> out;
  std::string err;
  EXPECT_FALSE(parseAxisValues("8:1", out, err));          // hi < lo
  EXPECT_FALSE(parseAxisValues("1:8:*1", out, err));       // factor <= 1
  EXPECT_FALSE(parseAxisValues("0:8:*2", out, err));       // geometric from 0
  EXPECT_FALSE(parseAxisValues("1:8:0", out, err));        // zero step
  EXPECT_FALSE(parseAxisValues("a:8", out, err));          // non-numeric
  EXPECT_FALSE(parseAxisValues("1:2:3:4", out, err));      // too many parts
  EXPECT_FALSE(parseAxisValues("1,,2", out, err));         // empty element
}

SweepSpec parseSweep(const std::string& text) {
  SweepSpec spec;
  std::string err;
  EXPECT_TRUE(parseSweepText(spec, text, "test", "", err)) << err;
  return spec;
}

TEST(SweepSpec, ParseBasics) {
  const SweepSpec spec = parseSweep(
      "name = demo\n"
      "base = uniform_square\n"
      "seeds = 3\n"
      "sweep.channels = 1,2\n"
      "zip.n = 100,200\n"
      "zip.side = 1.0,1.4\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.baseName, "uniform_square");
  ASSERT_EQ(spec.assignments.size(), 4u);
  EXPECT_EQ(spec.assignments[0].kind, SweepAssignKind::Fixed);
  EXPECT_EQ(spec.assignments[1].kind, SweepAssignKind::Axis);
  EXPECT_EQ(spec.assignments[2].kind, SweepAssignKind::Zip);
  EXPECT_EQ(spec.axisKeys(), (std::vector<std::string>{"channels", "n", "side"}));
  EXPECT_EQ(sweepCellCount(spec), 4u);  // 2 channels x 2 zipped pairs
}

TEST(SweepSpec, RejectsBadInput) {
  SweepSpec spec;
  std::string err;
  EXPECT_FALSE(parseSweepText(spec, "base = no_such_preset\n", "t", "", err));
  EXPECT_NE(err.find("unknown base preset"), std::string::npos);

  spec = SweepSpec{};
  EXPECT_FALSE(parseSweepText(spec, "sweep.bogus_key = 1,2\n", "t", "", err));
  EXPECT_NE(err.find("unknown scenario key"), std::string::npos);

  spec = SweepSpec{};
  EXPECT_FALSE(parseSweepText(spec, "sweep.n = 1,2\nzip.n = 3,4\n", "t", "", err));
  EXPECT_NE(err.find("assigned twice"), std::string::npos);
}

TEST(SweepSpec, OverrideReplacesAssignment) {
  SweepSpec spec = parseSweep("seeds = 4\nsweep.channels = 1,2,4\n");
  std::string err;
  ASSERT_TRUE(applySweepOverride(spec, "seeds", "1", err)) << err;
  ASSERT_TRUE(applySweepOverride(spec, "sweep.channels", "1,2", err)) << err;
  ASSERT_EQ(spec.assignments.size(), 2u);
  EXPECT_EQ(sweepCellCount(spec), 2u);
  std::vector<SweepCell> cells;
  ASSERT_TRUE(expandSweep(spec, cells, err)) << err;
  EXPECT_EQ(cells[0].spec.seeds, 1);
}

TEST(SweepSpec, OverrideKeepsDeclaredPosition) {
  // Overriding an axis must not move it: `range = 0.8` after the alpha
  // axis still rescales with the cell's alpha, and the axis order (hence
  // cell indices/labels) survives.
  SweepSpec spec = parseSweep(
      "sweep.alpha = 2.5,4\n"
      "range = 0.8\n"
      "sweep.channels = 1,2\n");
  std::string err;
  ASSERT_TRUE(applySweepOverride(spec, "sweep.alpha", "3,4", err)) << err;
  EXPECT_EQ(spec.assignments[0].key, "alpha");
  std::vector<SweepCell> cells;
  ASSERT_TRUE(expandSweep(spec, cells, err)) << err;
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].label, "alpha=3,channels=1");
  for (const SweepCell& cell : cells) {
    EXPECT_NEAR(cell.spec.sinr.transmissionRange(), 0.8, 1e-12) << cell.label;
  }
}

TEST(SweepExpand, RowMajorOrderAndLabels) {
  const SweepSpec spec = parseSweep(
      "sweep.channels = 1,2\n"
      "sweep.seeds = 3,4,5\n");
  std::vector<SweepCell> cells;
  std::string err;
  ASSERT_TRUE(expandSweep(spec, cells, err)) << err;
  ASSERT_EQ(cells.size(), 6u);
  // First-declared axis varies slowest.
  EXPECT_EQ(cells[0].label, "channels=1,seeds=3");
  EXPECT_EQ(cells[1].label, "channels=1,seeds=4");
  EXPECT_EQ(cells[3].label, "channels=2,seeds=3");
  EXPECT_EQ(cells[5].label, "channels=2,seeds=5");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<int>(i));
  }
  EXPECT_EQ(cells[5].spec.channels, 2);
  EXPECT_EQ(cells[5].spec.seeds, 5);
}

TEST(SweepExpand, ZipAxesAdvanceTogether) {
  const SweepSpec spec = parseSweep(
      "zip.n = 100,200,400\n"
      "zip.side = 1.0,1.4,2.0\n");
  std::vector<SweepCell> cells;
  std::string err;
  ASSERT_TRUE(expandSweep(spec, cells, err)) << err;
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[1].label, "n=200,side=1.4");
  EXPECT_EQ(cells[1].spec.deployment.n, 200);
  EXPECT_DOUBLE_EQ(cells[1].spec.deployment.side, 1.4);
}

TEST(SweepExpand, ZipLengthMismatchFails) {
  const SweepSpec spec = parseSweep("zip.n = 100,200\nzip.side = 1.0\n");
  // Lengths are validated at expansion (parse keeps the file readable for
  // --cells-style inspection of partial specs).
  std::vector<SweepCell> cells;
  std::string err;
  EXPECT_FALSE(expandSweep(spec, cells, err));
  EXPECT_NE(err.find("equal lengths"), std::string::npos);
}

TEST(SweepExpand, FileOrderApplication) {
  // `range = 0.8` placed after the alpha axis must rescale the noise
  // using each cell's alpha, not the base alpha (noise = P/(beta rt^alpha)
  // is alpha-dependent for rt != 1).
  const SweepSpec spec = parseSweep(
      "sweep.alpha = 2.5,4\n"
      "range = 0.8\n");
  std::vector<SweepCell> cells;
  std::string err;
  ASSERT_TRUE(expandSweep(spec, cells, err)) << err;
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_NEAR(cells[0].spec.sinr.transmissionRange(), 0.8, 1e-12);
  EXPECT_NEAR(cells[1].spec.sinr.transmissionRange(), 0.8, 1e-12);
  EXPECT_NE(cells[0].spec.sinr.noise, cells[1].spec.sinr.noise);
}

TEST(SweepExpand, InvalidCellFailsWithLabel) {
  // aloha requires channels = 1; the crossed cell with 2 channels is
  // invalid and must name itself in the diagnostic.
  const SweepSpec spec = parseSweep(
      "protocol = aloha\n"
      "sweep.channels = 1,2\n");
  std::vector<SweepCell> cells;
  std::string err;
  EXPECT_FALSE(expandSweep(spec, cells, err));
  EXPECT_NE(err.find("channels=2"), std::string::npos);
}

TEST(SweepShard, PartitionIsExactAndDisjoint) {
  for (const int k : {1, 2, 3, 5}) {
    for (int index = 0; index < 17; ++index) {
      int owners = 0;
      for (int i = 0; i < k; ++i) owners += cellInShard(index, i, k) ? 1 : 0;
      EXPECT_EQ(owners, 1) << "cell " << index << " with k=" << k;
    }
  }
}

TEST(SweepShard, ParseShardFlag) {
  int i = -1, k = -1;
  std::string err;
  EXPECT_TRUE(parseShard("0/2", i, k, err));
  EXPECT_EQ(i, 0);
  EXPECT_EQ(k, 2);
  EXPECT_TRUE(parseShard("4/5", i, k, err));
  EXPECT_FALSE(parseShard("2/2", i, k, err));
  EXPECT_FALSE(parseShard("-1/2", i, k, err));
  EXPECT_FALSE(parseShard("02", i, k, err));
  EXPECT_FALSE(parseShard("a/b", i, k, err));
}

/// A fast real campaign for runner-level tests.
SweepSpec tinySweep() {
  return parseSweep(
      "name = tiny\n"
      "base = uniform_square\n"
      "n = 60\n"
      "side = 1.0\n"
      "seeds = 2\n"
      "seed0 = 1\n"
      "sweep.channels = 1,2,4\n");
}

/// Everything per-seed except wall time (which legitimately varies).
void expectSeedResultsEqual(const SeedResult& a, const SeedResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.deployedN, b.deployedN);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.listens, b.listens);
  EXPECT_EQ(a.decodes, b.decodes);
  EXPECT_DOUBLE_EQ(a.decodeRate, b.decodeRate);
  EXPECT_EQ(a.structureSlots, b.structureSlots);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.validity, b.validity);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.error, b.error);
}

TEST(CampaignRunner, ShardsReproduceTheFullCampaign) {
  const SweepSpec spec = tinySweep();
  CampaignOptions opts;
  opts.writeCellFiles = false;
  CampaignResult full;
  std::string err;
  ASSERT_TRUE(runCampaign(spec, opts, full, err)) << err;
  ASSERT_EQ(full.cells.size(), 3u);

  std::vector<const CellResult*> merged(3, nullptr);
  CampaignResult shards[2];
  for (int s = 0; s < 2; ++s) {
    CampaignOptions shardOpts = opts;
    shardOpts.shardIndex = s;
    shardOpts.shardCount = 2;
    ASSERT_TRUE(runCampaign(spec, shardOpts, shards[s], err)) << err;
    EXPECT_EQ(shards[s].totalCells, 3);
    for (const CellResult& cell : shards[s].cells) {
      ASSERT_LT(static_cast<std::size_t>(cell.cell.index), merged.size());
      EXPECT_EQ(merged[static_cast<std::size_t>(cell.cell.index)], nullptr)
          << "cell owned by two shards";
      merged[static_cast<std::size_t>(cell.cell.index)] = &cell;
    }
  }
  // Together the shards cover exactly the full grid, bit-identical per cell.
  for (std::size_t i = 0; i < merged.size(); ++i) {
    ASSERT_NE(merged[i], nullptr) << "cell " << i << " unowned";
    EXPECT_EQ(merged[i]->cell.label, full.cells[i].cell.label);
    ASSERT_EQ(merged[i]->batch.perSeed.size(), full.cells[i].batch.perSeed.size());
    for (std::size_t s = 0; s < full.cells[i].batch.perSeed.size(); ++s) {
      expectSeedResultsEqual(merged[i]->batch.perSeed[s], full.cells[i].batch.perSeed[s]);
    }
  }
}

TEST(CampaignRunner, ResumeSkipsExistingCells) {
  const SweepSpec spec = tinySweep();
  const std::string dir = testing::TempDir() + "sweep_resume";
  std::filesystem::remove_all(dir);
  CampaignOptions opts;
  opts.outDir = dir;
  CampaignResult first;
  std::string err;
  ASSERT_TRUE(runCampaign(spec, opts, first, err)) << err;
  EXPECT_EQ(first.cachedCells(), 0);

  opts.resume = true;
  CampaignResult second;
  ASSERT_TRUE(runCampaign(spec, opts, second, err)) << err;
  EXPECT_EQ(second.cachedCells(), 3);
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    ASSERT_EQ(second.cells[i].batch.perSeed.size(), first.cells[i].batch.perSeed.size());
    for (std::size_t s = 0; s < first.cells[i].batch.perSeed.size(); ++s) {
      const SeedResult& a = first.cells[i].batch.perSeed[s];
      const SeedResult& b = second.cells[i].batch.perSeed[s];
      EXPECT_EQ(a.slots, b.slots);
      EXPECT_EQ(a.metrics, b.metrics);
    }
  }

  // A stale cell file must be re-run, not trusted: a different seed
  // batch, but also any fixed scenario key the label doesn't show (the
  // stored spec fingerprint catches both).
  SweepSpec changed = tinySweep();
  ASSERT_TRUE(applySweepOverride(changed, "seed0", "7", err)) << err;
  CampaignResult third;
  ASSERT_TRUE(runCampaign(changed, opts, third, err)) << err;
  EXPECT_EQ(third.cachedCells(), 0);

  SweepSpec resized = tinySweep();
  ASSERT_TRUE(applySweepOverride(resized, "n", "80", err)) << err;
  CampaignResult fourth;
  ASSERT_TRUE(runCampaign(resized, opts, fourth, err)) << err;
  EXPECT_EQ(fourth.cachedCells(), 0);
  std::filesystem::remove_all(dir);
}

TEST(CampaignRunner, ResumeRerunsCorruptCellFilesAndLeavesNoTempFiles) {
  const SweepSpec spec = tinySweep();
  const std::string dir = testing::TempDir() + "sweep_resume_corrupt";
  std::filesystem::remove_all(dir);
  CampaignOptions opts;
  opts.outDir = dir;
  CampaignResult first;
  std::string err;
  ASSERT_TRUE(runCampaign(spec, opts, first, err)) << err;

  // The atomic tmp+rename write must leave no *.tmp droppings behind.
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  // Truncate one cell file mid-JSON (what a pre-atomic-write crash used
  // to leave) and garbage another: resume must re-run both, and only
  // those two.
  const std::string cell0 = cellFilePath(dir, spec.name, 0);
  const std::string cell2 = cellFilePath(dir, spec.name, 2);
  {
    const std::string bytes = [&] {
      std::ifstream f(cell0, std::ios::binary);
      std::ostringstream ss;
      ss << f.rdbuf();
      return ss.str();
    }();
    ASSERT_GT(bytes.size(), 40u);
    std::ofstream f(cell0, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  {
    std::ofstream f(cell2, std::ios::binary | std::ios::trunc);
    f << "not json at all";
  }

  opts.resume = true;
  CampaignResult second;
  ASSERT_TRUE(runCampaign(spec, opts, second, err)) << err;
  EXPECT_EQ(second.cachedCells(), 1);
  EXPECT_FALSE(second.cells[0].fromCache);
  EXPECT_TRUE(second.cells[1].fromCache);
  EXPECT_FALSE(second.cells[2].fromCache);
  // The re-run repaired the files in place.
  CellResult repaired;
  EXPECT_TRUE(loadCellResult(cell0, repaired, err)) << err;
  EXPECT_TRUE(loadCellResult(cell2, repaired, err)) << err;
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    ASSERT_EQ(second.cells[i].batch.perSeed.size(), first.cells[i].batch.perSeed.size());
    for (std::size_t s = 0; s < first.cells[i].batch.perSeed.size(); ++s) {
      expectSeedResultsEqual(second.cells[i].batch.perSeed[s], first.cells[i].batch.perSeed[s]);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepReport, CellJsonRoundTrip) {
  const SweepSpec spec = tinySweep();
  CampaignOptions opts;
  opts.writeCellFiles = false;
  CampaignResult campaign;
  std::string err;
  ASSERT_TRUE(runCampaign(spec, opts, campaign, err)) << err;

  const std::string path = testing::TempDir() + "cell_roundtrip.json";
  ASSERT_TRUE(writeCellFile(campaign.cells[1], path, err)) << err;
  CellResult loaded;
  ASSERT_TRUE(loadCellResult(path, loaded, err)) << err;
  EXPECT_EQ(loaded.cell.index, 1);
  EXPECT_EQ(loaded.cell.label, campaign.cells[1].cell.label);
  EXPECT_EQ(loaded.cell.assignments, campaign.cells[1].cell.assignments);
  ASSERT_EQ(loaded.batch.perSeed.size(), campaign.cells[1].batch.perSeed.size());
  for (std::size_t s = 0; s < loaded.batch.perSeed.size(); ++s) {
    const SeedResult& a = campaign.cells[1].batch.perSeed[s];
    const SeedResult& b = loaded.batch.perSeed[s];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.slots, b.slots);
    EXPECT_DOUBLE_EQ(a.decodeRate, b.decodeRate);
    EXPECT_EQ(a.metrics, b.metrics);
    EXPECT_EQ(a.validity, b.validity);
  }
  std::filesystem::remove(path);
}

/// A synthetic two-cell campaign with fixed numbers (no real runs), used
/// by the golden-layout and sweep_check tests.
CampaignResult syntheticCampaign(double wallScale = 1.0, double slotScale = 1.0) {
  CampaignResult campaign;
  campaign.name = "golden";
  campaign.baseName = "uniform_square";
  campaign.description = "golden: base=uniform_square channels[2]";
  campaign.totalCells = 2;
  campaign.wallSec = 0.25 * wallScale;
  for (int c = 0; c < 2; ++c) {
    CellResult cell;
    cell.cell.index = c;
    cell.cell.label = "channels=" + std::to_string(c + 1);
    cell.cell.assignments = {{"channels", std::to_string(c + 1)}};
    cell.cell.spec.name = cell.cell.label;
    cell.cell.spec.channels = c + 1;
    cell.cell.spec.seeds = 2;
    cell.cell.spec.seed0 = 1;
    cell.batch.spec = cell.cell.spec;
    for (int s = 0; s < 2; ++s) {
      SeedResult r;
      r.seed = static_cast<std::uint64_t>(1 + s);
      r.deployedN = 60;
      r.slots = static_cast<std::uint64_t>((1000 + 100 * c + 10 * s) * slotScale);
      r.transmissions = 500;
      r.listens = 400;
      r.decodes = 300;
      r.decodeRate = 0.75;
      r.structureSlots = 200;
      r.delivered = true;
      r.validity = OutcomeValidity::Valid;
      r.metrics.set("agg_value", 0.5 + 0.25 * s);
      r.metrics.set("uplink_slots", 120 + 5 * c);
      r.wallSec = (0.1 + 0.01 * s) * wallScale;
      cell.batch.perSeed.push_back(std::move(r));
    }
    campaign.cells.push_back(std::move(cell));
  }
  return campaign;
}

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

TEST(SweepReport, GoldenJsonAndCsvLayout) {
  const CampaignResult campaign = syntheticCampaign();
  const std::string json = campaignToJson(campaign).dump() + "\n";
  EXPECT_EQ(json, readFile(std::string(MCS_SOURCE_DIR) + "/tests/golden/campaign.json"))
      << "campaign JSON layout changed: refresh tests/golden/campaign.json AND the "
         "committed sweeps/baseline.json (see sweeps/smoke.sweep)";

  const std::string csvPath = testing::TempDir() + "golden_campaign.csv";
  std::string err;
  ASSERT_TRUE(writeCampaignCsv(campaign, csvPath, err)) << err;
  EXPECT_EQ(readFile(csvPath),
            readFile(std::string(MCS_SOURCE_DIR) + "/tests/golden/campaign.csv"))
      << "campaign CSV layout changed: refresh tests/golden/campaign.csv";
  std::filesystem::remove(csvPath);
}

TEST(SweepCheck, PassesOnIdenticalCampaigns) {
  const Json a = campaignToJson(syntheticCampaign());
  const Json b = campaignToJson(syntheticCampaign());
  const SweepCheckResult r = compareCampaigns(a, b, SweepCheckOptions{});
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.cellsCompared, 2);
  EXPECT_GT(r.metricsCompared, 0);
}

TEST(SweepCheck, FailsOnInjectedWallTimeRegression) {
  const Json baseline = campaignToJson(syntheticCampaign());
  // 20% slower everywhere, identical metrics.
  const Json slower = campaignToJson(syntheticCampaign(1.2));
  SweepCheckOptions opts;
  opts.wallTol = 0.1;
  const SweepCheckResult r = compareCampaigns(baseline, slower, opts);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].find("wall_sec regression"), std::string::npos);

  // The same 20% is fine under a 50% tolerance...
  opts.wallTol = 0.5;
  EXPECT_TRUE(compareCampaigns(baseline, slower, opts).ok());
  // ...and a *speedup* never fails, even at zero tolerance.
  opts.wallTol = 0.0;
  const Json faster = campaignToJson(syntheticCampaign(0.5));
  EXPECT_TRUE(compareCampaigns(baseline, faster, opts).ok());
}

TEST(SweepCheck, FailsOnMetricDrift) {
  const Json baseline = campaignToJson(syntheticCampaign());
  const Json drifted = campaignToJson(syntheticCampaign(1.0, 1.1));  // slots +10%
  SweepCheckOptions opts;
  opts.metricTol = 0.05;
  const SweepCheckResult r = compareCampaigns(baseline, drifted, opts);
  EXPECT_FALSE(r.ok());
  bool slotsFlagged = false;
  for (const std::string& v : r.violations) {
    slotsFlagged = slotsFlagged || v.find("metric slots drift") != std::string::npos;
  }
  EXPECT_TRUE(slotsFlagged);
  opts.metricTol = 0.2;
  EXPECT_TRUE(compareCampaigns(baseline, drifted, opts).ok());
}

TEST(SweepCheck, MissingCellsAndSubsets) {
  const Json baseline = campaignToJson(syntheticCampaign());
  CampaignResult half = syntheticCampaign();
  half.cells.pop_back();
  const Json candidate = campaignToJson(half);
  SweepCheckOptions opts;
  EXPECT_FALSE(compareCampaigns(baseline, candidate, opts).ok());
  opts.allowMissing = true;
  EXPECT_TRUE(compareCampaigns(baseline, candidate, opts).ok());
  // Baseline-less garbage never passes.
  EXPECT_FALSE(compareCampaigns(Json::object(), candidate, opts).ok());
}

TEST(SweepPresets, EveryPresetParsesAndExpands) {
  for (const SweepPresetInfo& info : SweepRegistry::list()) {
    SweepSpec spec;
    std::string err;
    ASSERT_TRUE(SweepRegistry::find(info.name, spec, err)) << info.name << ": " << err;
    EXPECT_EQ(spec.name, info.name);
    std::vector<SweepCell> cells;
    ASSERT_TRUE(expandSweep(spec, cells, err)) << info.name << ": " << err;
    EXPECT_GE(cells.size(), 2u) << info.name;
    EXPECT_FALSE(info.description.empty());
  }
}

TEST(SweepPresets, CommittedFilesMatchPresets) {
  // The committed sweeps/*.sweep files and the embedded presets must
  // expand to the same campaigns (same cells, same specs).
  for (const char* name : {"e2_scaling", "e8_robustness", "e8_uncertainty", "e10_mobility"}) {
    SweepSpec fromPreset, fromFile;
    std::string err;
    ASSERT_TRUE(SweepRegistry::find(name, fromPreset, err)) << err;
    ASSERT_TRUE(loadSweepFile(fromFile,
                              std::string(MCS_SOURCE_DIR) + "/sweeps/" + name + ".sweep", err))
        << err;
    EXPECT_EQ(fromFile.name, fromPreset.name);
    std::vector<SweepCell> presetCells, fileCells;
    ASSERT_TRUE(expandSweep(fromPreset, presetCells, err)) << err;
    ASSERT_TRUE(expandSweep(fromFile, fileCells, err)) << err;
    ASSERT_EQ(fileCells.size(), presetCells.size()) << name;
    for (std::size_t i = 0; i < fileCells.size(); ++i) {
      EXPECT_EQ(fileCells[i].label, presetCells[i].label) << name;
      EXPECT_EQ(describeScenario(fileCells[i].spec), describeScenario(presetCells[i].spec))
          << name;
    }
  }
}

TEST(SweepFiles, SmokeBaselineMatchesAFreshRun) {
  // The CI gate in miniature: run sweeps/smoke.sweep and check it against
  // the committed baseline.  Metrics must agree to CI tolerance; wall
  // time is effectively unconstrained here (machines differ).
  SweepSpec spec;
  std::string err;
  ASSERT_TRUE(loadSweepFile(spec, std::string(MCS_SOURCE_DIR) + "/sweeps/smoke.sweep", err))
      << err;
  CampaignOptions opts;
  opts.writeCellFiles = false;
  CampaignResult campaign;
  ASSERT_TRUE(runCampaign(spec, opts, campaign, err)) << err;

  Json baseline;
  ASSERT_TRUE(
      Json::parseFile(std::string(MCS_SOURCE_DIR) + "/sweeps/baseline.json", baseline, err))
      << err;
  SweepCheckOptions check;
  check.metricTol = 0.2;
  check.wallTol = 1e9;
  const SweepCheckResult r = compareCampaigns(baseline, campaignToJson(campaign), check);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0])
                      << "\n(seed pipeline changed? regenerate sweeps/baseline.json per "
                         "sweeps/smoke.sweep)";
}

TEST(ScenarioBounds, WidthDegradesKnowledgeDeterministically) {
  ScenarioSpec spec;
  spec.deployment.n = 300;
  spec.deployment.side = 1.0;
  spec.seeds = 1;

  // bounds_width = 0 is the exact-knowledge contract: identical to the
  // default spec, bit for bit.
  const SeedResult exact = runScenarioSeed(spec, 11);
  spec.boundsWidth = 0.0;
  const SeedResult zero = runScenarioSeed(spec, 11);
  EXPECT_EQ(exact.slots, zero.slots);
  EXPECT_EQ(exact.metrics, zero.metrics);

  // Degraded knowledge changes protocol behavior (conservative ranges),
  // and the same width reproduces the same run.
  spec.boundsWidth = 0.4;
  const SeedResult wide = runScenarioSeed(spec, 11);
  const SeedResult wide2 = runScenarioSeed(spec, 11);
  EXPECT_EQ(wide.slots, wide2.slots);
  EXPECT_NE(wide.slots, exact.slots);

  spec.boundsWidth = -0.1;
  EXPECT_FALSE(validateScenario(spec).empty());
}

TEST(ScenarioSpec, FlagOverridesApplyInCommandLineOrder) {
  // --range before --alpha must rescale with the *default* alpha and then
  // change alpha (file-order semantics); alphabetical application would
  // silently give R_T = 0.8 again.
  const char* argv[] = {"prog", "--range=0.8", "--alpha=4"};
  const Args args(3, argv);
  ScenarioSpec spec;
  std::string err;
  ASSERT_TRUE(applyScenarioArgs(spec, args, {}, err)) << err;
  EXPECT_DOUBLE_EQ(spec.sinr.alpha, 4.0);
  EXPECT_NEAR(spec.sinr.transmissionRange(), std::pow(0.8, 3.0 / 4.0), 1e-12);
}

TEST(ScenarioSpec, KeyValuesSerializationRoundTrips) {
  ScenarioSpec spec;
  spec.name = "roundtrip";
  spec.deployment.kind = DeploymentKind::Clustered;
  spec.deployment.n = 777;
  spec.deployment.spread = 0.061;
  spec.sinr.alpha = 2.5;
  spec.sinr = spec.sinr.withRange(0.9);
  spec.sinr.fading.model = FadingModel::Lognormal;
  spec.sinr.fading.shadowSigmaDb = 4.5;
  spec.boundsWidth = 0.2;
  spec.protocol = ProtocolKind::Csa;
  spec.csaVariant = CsaVariant::Small;
  spec.seeds = 5;
  spec.seed0 = 123;

  const std::string path = testing::TempDir() + "scenario_roundtrip.txt";
  {
    std::ofstream f(path);
    f << scenarioToKeyValues(spec);
  }
  ScenarioSpec loaded;
  std::string err;
  ASSERT_TRUE(loadScenarioFile(loaded, path, err)) << err;
  EXPECT_EQ(scenarioToKeyValues(loaded), scenarioToKeyValues(spec));
  EXPECT_DOUBLE_EQ(loaded.sinr.noise, spec.sinr.noise);
  EXPECT_EQ(loaded.protocol, ProtocolKind::Csa);
  std::filesystem::remove(path);
}

TEST(SweepJson, ParserBasics) {
  Json v;
  std::string err;
  ASSERT_TRUE(Json::parse(R"({"a": 1.5, "b": [1, 2, {"c": "x,\"y\""}], "d": null,
                             "e": true})",
                          v, err))
      << err;
  EXPECT_DOUBLE_EQ(v.numberAt("a"), 1.5);
  ASSERT_NE(v.find("b"), nullptr);
  EXPECT_EQ(v.find("b")->items()[2].stringAt("c"), "x,\"y\"");
  EXPECT_TRUE(v.find("d")->isNull());
  EXPECT_TRUE(v.find("e")->asBool());
  // Round trip.
  Json again;
  ASSERT_TRUE(Json::parse(v.dump(), again, err)) << err;
  EXPECT_EQ(v.dump(), again.dump());

  EXPECT_FALSE(Json::parse("{\"a\": }", v, err));
  EXPECT_FALSE(Json::parse("[1, 2", v, err));
  EXPECT_FALSE(Json::parse("nope", v, err));
  EXPECT_FALSE(Json::parse("{} junk", v, err));
}

}  // namespace
}  // namespace mcs
