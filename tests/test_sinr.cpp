#include <gtest/gtest.h>

#include <cmath>

#include "sinr/medium.h"
#include "sinr/params.h"

namespace mcs {
namespace {

TEST(SinrParams, DefaultIsNormalized) {
  const SinrParams p;
  EXPECT_TRUE(p.valid());
  EXPECT_NEAR(p.transmissionRange(), 1.0, 1e-12);
}

TEST(SinrParams, WithRangeRescales) {
  const SinrParams p = SinrParams{}.withRange(2.5);
  EXPECT_NEAR(p.transmissionRange(), 2.5, 1e-12);
}

TEST(SinrParams, RxPowerInverseSquareCube) {
  const SinrParams p;  // alpha = 3
  EXPECT_NEAR(p.rxPower(2.0), p.power / 8.0, 1e-12);
  EXPECT_NEAR(p.rxPower(0.5), p.power * 8.0, 1e-12);
}

TEST(SinrParams, DistanceFromPowerRoundTrip) {
  const SinrParams p;
  for (const double d : {0.05, 0.3, 0.9, 1.7}) {
    EXPECT_NEAR(p.distanceFromPower(p.rxPower(d)), d, 1e-9);
  }
}

TEST(SinrParams, ClearThresholdFormula) {
  SinrParams p;
  p.alpha = 3.0;
  p.beta = 1.5;
  p.noise = 2.0;
  // T_s = N * min{(2^a - 1)/2^a, beta/2^a} = 2 * min{7/8, 1.5/8}.
  EXPECT_NEAR(p.clearThreshold(), 2.0 * 1.5 / 8.0, 1e-12);
}

TEST(SinrParams, Lemma2FactorPositiveAndSmall) {
  const SinrParams p;
  const double t = p.lemma2Factor();
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.0);
}

TEST(SinrParams, ValidityChecks) {
  SinrParams p;
  p.alpha = 2.0;
  EXPECT_FALSE(p.valid());
  p = SinrParams{};
  p.beta = 0.5;
  EXPECT_FALSE(p.valid());
  p = SinrParams{};
  p.noise = 0.0;
  EXPECT_FALSE(p.valid());
}

TEST(SinrBounds, ExactHasTrueValues) {
  const SinrParams p;
  const SinrBounds b = SinrBounds::exact(p);
  EXPECT_EQ(b.alphaMin, p.alpha);
  EXPECT_EQ(b.alphaMax, p.alpha);
  EXPECT_NEAR(b.rangeLower(), p.transmissionRange(), 1e-12);
  EXPECT_NEAR(b.clearThresholdLower(), p.clearThreshold(), 1e-12);
}

TEST(SinrBounds, AroundIsConservative) {
  const SinrParams p;
  const SinrBounds b = SinrBounds::around(p, 0.2);
  EXPECT_LE(b.alphaMin, p.alpha);
  EXPECT_GE(b.alphaMax, p.alpha);
  // Conservative range never exceeds the true one under worse params.
  EXPECT_LE(b.rangeLower(), p.transmissionRange() + 1e-12);
  // Conservative clear threshold never exceeds the exact one.
  EXPECT_LE(b.clearThresholdLower(), p.clearThreshold() + 1e-12);
  // Distance upper bound >= true distance.
  for (const double d : {0.1, 0.5, 0.9}) {
    EXPECT_GE(b.distanceUpper(p.rxPower(d)) + 1e-12, d);
  }
}

// ---------------------------------------------------------------------------
// Medium
// ---------------------------------------------------------------------------

struct MediumFixture : ::testing::Test {
  SinrParams params{};
  std::vector<Vec2> pos;
  std::vector<Intent> intents;
  std::vector<Reception> rx;

  Reception run(int channels = 1) {
    Medium medium(params, channels);
    medium.resolveSlot(pos, intents, rx);
    for (std::size_t i = 0; i < intents.size(); ++i) {
      if (intents[i].action == Action::Listen) return rx[i];
    }
    return {};
  }
};

TEST_F(MediumFixture, SingleTransmitterInRangeDecodes) {
  pos = {{0, 0}, {0.5, 0}};
  Message m;
  m.type = MsgType::Hello;
  m.src = 0;
  intents = {Intent::transmit(0, m), Intent::listen(0)};
  const Reception r = run();
  ASSERT_TRUE(r.received);
  EXPECT_EQ(r.msg.type, MsgType::Hello);
  EXPECT_EQ(r.msg.src, 0);
  EXPECT_GE(r.sinr, params.beta);
  EXPECT_NEAR(r.senderDistance, 0.5, 1e-9);
  EXPECT_NEAR(r.signalPower, params.rxPower(0.5), 1e-12);
}

TEST_F(MediumFixture, OutOfRangeFails) {
  pos = {{0, 0}, {1.01, 0}};  // just beyond R_T = 1
  intents = {Intent::transmit(0, {}), Intent::listen(0)};
  EXPECT_FALSE(run().received);
}

TEST_F(MediumFixture, AtExactRangeDecodes) {
  pos = {{0, 0}, {0.999, 0}};
  intents = {Intent::transmit(0, {}), Intent::listen(0)};
  EXPECT_TRUE(run().received);
}

TEST_F(MediumFixture, EqualDistanceCollision) {
  // Two equidistant transmitters: SINR ~ 1 < beta for both.
  pos = {{-0.3, 0}, {0.3, 0}, {0, 0}};
  intents = {Intent::transmit(0, {}), Intent::transmit(0, {}), Intent::listen(0)};
  const Reception r = run();
  EXPECT_FALSE(r.received);
  EXPECT_NEAR(r.totalPower, 2.0 * params.rxPower(0.3), 1e-12);
}

TEST_F(MediumFixture, CaptureEffect) {
  // Near transmitter dominates a far one.
  pos = {{0.05, 0}, {0.9, 0}, {0, 0}};
  Message nearMsg;
  nearMsg.src = 0;
  intents = {Intent::transmit(0, nearMsg), Intent::transmit(0, {}), Intent::listen(0)};
  const Reception r = run();
  ASSERT_TRUE(r.received);
  EXPECT_EQ(r.msg.src, 0);
  EXPECT_GT(r.interference(), 0.0);
}

TEST_F(MediumFixture, ChannelsAreIsolated) {
  // Interferer on another channel does not affect decoding.
  pos = {{0.9, 0}, {0.01, 0.01}, {0, 0}};
  Message m;
  m.src = 0;
  intents = {Intent::transmit(0, m), Intent::transmit(1, {}), Intent::listen(0)};
  const Reception r = run(2);
  ASSERT_TRUE(r.received);
  EXPECT_EQ(r.msg.src, 0);
  EXPECT_NEAR(r.totalPower, params.rxPower(0.9), 1e-12);
}

TEST_F(MediumFixture, TransmittersObserveNothing) {
  pos = {{0, 0}, {0.1, 0}};
  intents = {Intent::transmit(0, {}), Intent::transmit(0, {})};
  Medium medium(params, 1);
  medium.resolveSlot(pos, intents, rx);
  EXPECT_FALSE(rx[0].received);
  EXPECT_FALSE(rx[1].received);
  EXPECT_EQ(rx[0].totalPower, 0.0);
}

TEST_F(MediumFixture, SilentChannelYieldsNothing) {
  pos = {{0, 0}, {0.1, 0}};
  intents = {Intent::listen(0), Intent::listen(0)};
  const Reception r = run();
  EXPECT_FALSE(r.received);
  EXPECT_EQ(r.totalPower, 0.0);
}

TEST_F(MediumFixture, CarrierSenseSumsAllTransmitters) {
  pos = {{0.4, 0}, {0, 0.4}, {-0.4, 0}, {0, 0}};
  intents = {Intent::transmit(0, {}), Intent::transmit(0, {}), Intent::transmit(0, {}),
             Intent::listen(0)};
  Medium medium(params, 1);
  medium.resolveSlot(pos, intents, rx);
  EXPECT_NEAR(rx[3].totalPower, 3.0 * params.rxPower(0.4), 1e-12);
}

TEST_F(MediumFixture, StatsAccumulate) {
  pos = {{0, 0}, {0.5, 0}};
  intents = {Intent::transmit(0, {}), Intent::listen(0)};
  Medium medium(params, 1);
  medium.resolveSlot(pos, intents, rx);
  medium.resolveSlot(pos, intents, rx);
  EXPECT_EQ(medium.stats().slots, 2u);
  EXPECT_EQ(medium.stats().transmissions, 2u);
  EXPECT_EQ(medium.stats().listens, 2u);
  EXPECT_EQ(medium.stats().decodes, 2u);
  EXPECT_DOUBLE_EQ(medium.stats().decodeRate(), 1.0);
  medium.resetStats();
  EXPECT_EQ(medium.stats().slots, 0u);
}

/// Decode iff SINR condition (1) holds, across a parameter sweep.
class MediumSinrSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MediumSinrSweep, DecodeMatchesFormula) {
  const auto [alpha, beta] = GetParam();
  SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  p = p.withRange(1.0);
  Medium medium(p, 1);
  // Listener at origin; signal from d1, interferer at d2.
  for (const double d1 : {0.2, 0.5, 0.8}) {
    for (const double d2 : {0.3, 0.7, 1.5}) {
      std::vector<Vec2> pos{{d1, 0}, {0, d2}, {0, 0}};
      std::vector<Intent> intents{Intent::transmit(0, {}), Intent::transmit(0, {}),
                                  Intent::listen(0)};
      std::vector<Reception> rx;
      medium.resolveSlot(pos, intents, rx);
      const double s1 = p.rxPower(d1), s2 = p.rxPower(d2);
      const double best = std::max(s1, s2);
      const double other = std::min(s1, s2);
      const bool shouldDecode = best >= p.beta * (p.noise + other);
      EXPECT_EQ(rx[2].received, shouldDecode)
          << "alpha=" << alpha << " beta=" << beta << " d1=" << d1 << " d2=" << d2;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MediumSinrSweep,
                         ::testing::Combine(::testing::Values(2.5, 3.0, 4.0),
                                            ::testing::Values(1.0, 1.5, 3.0)));

}  // namespace
}  // namespace mcs
