#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/coordinator.h"
#include "campaign/protocol.h"
#include "campaign/reduce.h"
#include "campaign/report.h"
#include "store/reader.h"
#include "sweep/check.h"
#include "sweep/report.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "util/framing.h"
#include "util/json.h"
#include "util/stats.h"

// The multi-process campaign coordinator: wire framing, the frame
// vocabulary, cross-process moment transport, the fixed-shape tree
// reduction, and the headline contracts — work-queue cell files and
// reports byte-identical to the in-process runner (wall times aside),
// and worker-death requeues that leave no trace in the output.
namespace mcs {
namespace campaign {
namespace {

// ---------------------------------------------------------------- framing

std::string frameBytes(std::string_view payload) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string err;
  EXPECT_TRUE(writeFrame(fds[0], payload, err)) << err;
  std::string wire(payload.size() + 4, '\0');
  ssize_t got = read(fds[1], wire.data(), wire.size());
  EXPECT_EQ(static_cast<std::size_t>(got), wire.size());
  close(fds[0]);
  close(fds[1]);
  return wire;
}

TEST(Framing, RoundTripAcrossArbitraryChunkBoundaries) {
  const std::vector<std::string> payloads = {"", "x", R"({"type": "lease", "cell": 3})",
                                             std::string(1000, 'q')};
  std::string wire;
  for (const std::string& p : payloads) wire += frameBytes(p);

  // Feed the concatenated stream in every chunk size from 1 byte up:
  // frame boundaries never align with feed() boundaries.
  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameDecoder dec;
    std::vector<std::string> decoded;
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
      dec.feed(wire.data() + off, std::min(chunk, wire.size() - off));
      std::string payload;
      while (dec.next(payload)) decoded.push_back(payload);
    }
    EXPECT_FALSE(dec.bad());
    EXPECT_EQ(decoded, payloads) << "chunk size " << chunk;
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(Framing, OversizeLengthPrefixPoisonsTheDecoder) {
  // A length prefix beyond kMaxFrameBytes must mark the stream broken
  // without attempting the allocation.
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  FrameDecoder dec;
  dec.feed(reinterpret_cast<const char*>(prefix), 4);
  std::string payload;
  EXPECT_FALSE(dec.next(payload));
  EXPECT_TRUE(dec.bad());
  // Once bad, always bad — further bytes don't resurrect it.
  dec.feed("more", 4);
  EXPECT_FALSE(dec.next(payload));
  EXPECT_TRUE(dec.bad());
}

// --------------------------------------------------------------- protocol

TEST(CampaignProtocol, FramesRoundTrip) {
  for (const FrameType t :
       {FrameType::Lease, FrameType::Heartbeat, FrameType::Result, FrameType::Done}) {
    Frame f = makeFrame(t);
    f.body.set("cell", Json(7.0));
    Frame back;
    std::string err;
    ASSERT_TRUE(decodeFrame(encodeFrame(f), back, err)) << err;
    EXPECT_EQ(back.type, t);
    EXPECT_EQ(back.body.numberAt("cell"), 7.0);
    EXPECT_EQ(back.body.stringAt("type"), toString(t));
  }
}

TEST(CampaignProtocol, RejectsMalformedFrames) {
  Frame out;
  std::string err;
  EXPECT_FALSE(decodeFrame("not json", out, err));
  EXPECT_FALSE(decodeFrame(R"({"cell": 1})", out, err));               // no type
  EXPECT_FALSE(decodeFrame(R"({"type": "teleport"})", out, err));      // unknown type
  EXPECT_FALSE(err.empty());
}

TEST(CampaignProtocol, MomentsCarryTheFullAccumulatorState) {
  // Transporting accumulators over JSON and rebuilding them must behave
  // exactly like the originals under further merges — moments AND the
  // quantile state.
  StreamingStats a;
  for (const double x : {1.0, 2.5, -3.0, 7.25}) a.add(x);
  StreamingStats b;
  for (const double x : {0.5, 100.0}) b.add(x);

  MetricStats stats;
  stats.emplace_back("alpha", a);
  stats.emplace_back("beta", b);
  const MetricStats back = momentsFromJson(momentsToJson(stats));
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back[i].first, stats[i].first);
    EXPECT_EQ(back[i].second.moments.count(), stats[i].second.moments.count());
    EXPECT_EQ(back[i].second.moments.mean(), stats[i].second.moments.mean());
    EXPECT_EQ(back[i].second.moments.m2(), stats[i].second.moments.m2());
    EXPECT_EQ(back[i].second.moments.min(), stats[i].second.moments.min());
    EXPECT_EQ(back[i].second.moments.max(), stats[i].second.moments.max());
    EXPECT_EQ(back[i].second.moments.sum(), stats[i].second.moments.sum());
    EXPECT_EQ(back[i].second.quantiles.quantile(0.5), stats[i].second.quantiles.quantile(0.5));
  }

  // Merging a round-tripped accumulator is bit-identical to merging the
  // original — the property the coordinator-side reduction relies on.
  StreamingStats direct = a;
  direct.merge(b);
  StreamingStats viaWire = back[0].second;
  viaWire.merge(back[1].second);
  EXPECT_EQ(viaWire.moments.mean(), direct.moments.mean());
  EXPECT_EQ(viaWire.moments.m2(), direct.moments.m2());
  EXPECT_EQ(viaWire.moments.count(), direct.moments.count());
  EXPECT_EQ(viaWire.quantiles.quantile(0.95), direct.quantiles.quantile(0.95));
}

// --------------------------------------------------------------- reducer

MetricStats leafStats(std::size_t i) {
  StreamingStats s;
  // Values chosen so merge order matters in the last float bits if the
  // tree shape were not fixed.
  s.add(1.0 + 1e-9 * static_cast<double>(i));
  s.add(3.0 / (1.0 + static_cast<double>(i)));
  MetricStats m;
  m.emplace_back("metric", s);
  return m;
}

MetricStats reduceInOrder(std::size_t n, const std::vector<std::size_t>& order) {
  TreeReducer r(n);
  for (const std::size_t i : order) r.addLeaf(i, leafStats(i));
  EXPECT_TRUE(r.complete());
  return r.root();
}

TEST(TreeReducer, RootIsBitIdenticalAcrossArrivalOrders) {
  for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 13u}) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    const MetricStats forward = reduceInOrder(n, order);
    ASSERT_EQ(forward.size(), 1u);
    EXPECT_EQ(forward[0].second.moments.count(), 2 * n);

    std::reverse(order.begin(), order.end());
    MetricStats other = reduceInOrder(n, order);
    EXPECT_EQ(other[0].second.moments.mean(), forward[0].second.moments.mean())
        << "n=" << n << " reversed";
    EXPECT_EQ(other[0].second.moments.m2(), forward[0].second.moments.m2());

    std::mt19937 rng(42);
    for (int trial = 0; trial < 5; ++trial) {
      std::shuffle(order.begin(), order.end(), rng);
      other = reduceInOrder(n, order);
      EXPECT_EQ(other[0].second.moments.mean(), forward[0].second.moments.mean())
          << "n=" << n << " trial " << trial;
      EXPECT_EQ(other[0].second.moments.m2(), forward[0].second.moments.m2());
      EXPECT_EQ(other[0].second.moments.min(), forward[0].second.moments.min());
      EXPECT_EQ(other[0].second.moments.max(), forward[0].second.moments.max());
      EXPECT_EQ(other[0].second.quantiles.quantile(0.5),
                forward[0].second.quantiles.quantile(0.5));
    }
  }
}

TEST(TreeReducer, EmptyAndSingleLeaf) {
  TreeReducer empty(0);
  EXPECT_TRUE(empty.complete());
  EXPECT_TRUE(empty.root().empty());

  TreeReducer one(1);
  EXPECT_FALSE(one.complete());
  one.addLeaf(0, leafStats(0));
  EXPECT_TRUE(one.complete());
  ASSERT_EQ(one.root().size(), 1u);
  EXPECT_EQ(one.root()[0].second.moments.count(), 2u);
  EXPECT_EQ(one.pendingNodes(), 0u);
}

TEST(TreeReducer, InOrderArrivalKeepsALogarithmicFrontier) {
  const std::size_t n = 64;
  TreeReducer r(n);
  std::size_t peak = 0;
  for (std::size_t i = 0; i < n; ++i) {
    r.addLeaf(i, leafStats(i));
    peak = std::max(peak, r.pendingNodes());
  }
  EXPECT_TRUE(r.complete());
  // In-order arrival carries at most one pending node per level: the
  // streaming-memory contract (log2(64) = 6).
  EXPECT_LE(peak, 6u);
  EXPECT_EQ(r.pendingNodes(), 0u);
}

TEST(TreeReducer, MetricNameUnionAcrossLeaves) {
  TreeReducer r(2);
  StreamingStats onlyLeft;
  onlyLeft.add(5.0);
  MetricStats leftLeaf;
  leftLeaf.emplace_back("shared", leafStats(0)[0].second);
  leftLeaf.emplace_back("left_only", onlyLeft);
  MetricStats rightLeaf;
  rightLeaf.emplace_back("shared", leafStats(1)[0].second);
  r.addLeaf(0, leftLeaf);
  r.addLeaf(1, rightLeaf);
  ASSERT_TRUE(r.complete());
  const MetricStats& root = r.root();
  ASSERT_EQ(root.size(), 2u);
  EXPECT_EQ(root[0].first, "left_only");
  EXPECT_EQ(root[0].second.moments.count(), 1u);
  EXPECT_EQ(root[1].first, "shared");
  EXPECT_EQ(root[1].second.moments.count(), 4u);
}

// ---------------------------------------------------- end-to-end parity

/// A fast real sweep whose cells are cheap enough for process tests.
SweepSpec tinySweep(const std::string& name) {
  SweepSpec spec;
  std::string err;
  EXPECT_TRUE(applySweepKey(spec, "name", name, "", err)) << err;
  EXPECT_TRUE(applySweepKey(spec, "base", "uniform_square", "", err)) << err;
  EXPECT_TRUE(applySweepKey(spec, "n", "60", "", err)) << err;
  EXPECT_TRUE(applySweepKey(spec, "seeds", "2", "", err)) << err;
  EXPECT_TRUE(applySweepKey(spec, "seed0", "1", "", err)) << err;
  EXPECT_TRUE(applySweepKey(spec, "sweep.channels", "1,2,4", "", err)) << err;
  return spec;
}

std::string readFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Canonical cell-file bytes: parse, zero wall clocks, re-dump.
std::string canonicalJsonBytes(const std::string& path) {
  Json j;
  std::string err;
  EXPECT_TRUE(Json::parseFile(path, j, err)) << path << ": " << err;
  stripWallTimes(j);
  return j.dump();
}

TEST(WorkQueue, MatchesInProcessRunByteForByte) {
  const std::string dir = testing::TempDir() + "wq_parity";
  std::filesystem::remove_all(dir);
  const SweepSpec spec = tinySweep("wq_parity");
  std::string err;

  // Reference: the in-process single-threaded runner.
  CampaignOptions inproc;
  inproc.outDir = dir + "/inproc";
  CampaignResult ref;
  ASSERT_TRUE(runCampaign(spec, inproc, ref, err)) << err;
  std::string refReport;
  ASSERT_TRUE(writeCampaignReport(ref, inproc.outDir, refReport, err)) << err;

  // Candidate: two forked workers over the lease protocol.
  WorkQueueOptions wq;
  wq.workers = 2;
  wq.outDir = dir + "/wq";
  WorkQueueCampaign run;
  ASSERT_TRUE(runCampaignWorkQueue(spec, wq, run, err)) << err;
  EXPECT_EQ(run.leases, 3u);
  EXPECT_EQ(run.requeues, 0u);
  EXPECT_EQ(run.workerDeaths, 0u);
  EXPECT_EQ(run.failures(), 0);
  ASSERT_EQ(run.cells.size(), 3u);
  std::string wqReport;
  ASSERT_TRUE(writeWorkQueueCampaignReport(run, wq.outDir, wq.outDir, wqReport, err)) << err;

  // Per-cell files: byte-identical after wall-time canonicalization.
  for (const CellRecord& rec : run.cells) {
    const std::string refCell = cellFilePath(inproc.outDir, spec.name, rec.cell.index);
    const std::string wqCell = cellFilePath(wq.outDir, spec.name, rec.cell.index);
    EXPECT_EQ(canonicalJsonBytes(wqCell), canonicalJsonBytes(refCell))
        << "cell " << rec.cell.index;
  }

  // Whole spliced report vs the in-process writer, same canonicalization.
  EXPECT_EQ(canonicalJsonBytes(wqReport), canonicalJsonBytes(refReport));

  // CSVs too, modulo the wall_sec rows (drop them on both sides).
  const std::string refCsv = dir + "/ref.csv";
  const std::string wqCsv = dir + "/wq.csv";
  ASSERT_TRUE(writeCampaignCsv(ref, refCsv, err)) << err;
  ASSERT_TRUE(writeWorkQueueCampaignCsv(run, wq.outDir, wqCsv, err)) << err;
  auto withoutWallRows = [](const std::string& csv) {
    std::istringstream in(csv);
    std::string line, out;
    while (std::getline(in, line)) {
      if (line.find(",wall_sec,") == std::string::npos) out += line + "\n";
    }
    return out;
  };
  EXPECT_EQ(withoutWallRows(readFile(wqCsv)), withoutWallRows(readFile(refCsv)));

  // The tree-reduced aggregate matches a direct per-seed accumulation.
  ASSERT_FALSE(run.reduction.empty());
  const auto slots = std::find_if(run.reduction.begin(), run.reduction.end(),
                                  [](const auto& kv) { return kv.first == "slots"; });
  ASSERT_NE(slots, run.reduction.end());
  OnlineStats expectSlots;
  for (const CellResult& cell : ref.cells) {
    for (const SeedResult& r : cell.batch.perSeed) {
      if (r.error.empty()) expectSlots.add(static_cast<double>(r.slots));
    }
  }
  EXPECT_EQ(slots->second.moments.count(), expectSlots.count());
  EXPECT_EQ(slots->second.moments.sum(), expectSlots.sum());
  EXPECT_EQ(slots->second.moments.min(), expectSlots.min());
  EXPECT_EQ(slots->second.moments.max(), expectSlots.max());
}

TEST(WorkQueue, StoreMatchesInProcessByteForByte) {
  // The columnar store is positional (rows land by slot, blobs are
  // reordered canonically at finish), so with wall times stripped the
  // 4-worker store must be the same FILE — not just the same data — as
  // the in-process one.
  const std::string dir = testing::TempDir() + "wq_store";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const SweepSpec spec = tinySweep("wq_store");
  std::string err;

  CampaignOptions inproc;
  inproc.outDir = dir + "/inproc";
  inproc.writeCellFiles = false;
  inproc.storePath = dir + "/inproc.store";
  inproc.storeStripWall = true;
  CampaignResult ref;
  ASSERT_TRUE(runCampaign(spec, inproc, ref, err)) << err;

  WorkQueueOptions wq;
  wq.workers = 4;
  wq.outDir = dir + "/wq";
  wq.storePath = dir + "/wq.store";
  wq.storeStripWall = true;
  WorkQueueCampaign run;
  ASSERT_TRUE(runCampaignWorkQueue(spec, wq, run, err)) << err;

  const std::string refBytes = readFile(inproc.storePath);
  const std::string wqBytes = readFile(wq.storePath);
  ASSERT_FALSE(refBytes.empty());
  EXPECT_EQ(wqBytes, refBytes);

  // And the store opens and reads back the campaign's shape.
  store::StoreReader reader;
  ASSERT_TRUE(reader.open(wq.storePath, err)) << err;
  EXPECT_EQ(reader.cells(), 3u);
  EXPECT_EQ(reader.campaignName(), "wq_store");
  EXPECT_NE(reader.metricIndex("slots"), -1);
  EXPECT_NE(reader.axisIndex("channels"), -1);
}

TEST(WorkQueue, ResumeLoadsEveryCellFromCacheWithoutLeasing) {
  const std::string dir = testing::TempDir() + "wq_resume";
  std::filesystem::remove_all(dir);
  const SweepSpec spec = tinySweep("wq_resume");
  std::string err;

  WorkQueueOptions wq;
  wq.workers = 2;
  wq.outDir = dir;
  WorkQueueCampaign first;
  ASSERT_TRUE(runCampaignWorkQueue(spec, wq, first, err)) << err;
  EXPECT_EQ(first.cachedCells(), 0);

  wq.resume = true;
  WorkQueueCampaign second;
  ASSERT_TRUE(runCampaignWorkQueue(spec, wq, second, err)) << err;
  EXPECT_EQ(second.cachedCells(), 3);
  EXPECT_EQ(second.leases, 0u);
  EXPECT_EQ(second.workerDeaths, 0u);
  // The reduction is rebuilt from the cached cells and still complete.
  ASSERT_FALSE(second.reduction.empty());
  const auto slots = std::find_if(second.reduction.begin(), second.reduction.end(),
                                  [](const auto& kv) { return kv.first == "slots"; });
  ASSERT_NE(slots, second.reduction.end());
  const auto firstSlots = std::find_if(first.reduction.begin(), first.reduction.end(),
                                       [](const auto& kv) { return kv.first == "slots"; });
  ASSERT_NE(firstSlots, first.reduction.end());
  EXPECT_EQ(slots->second.moments.count(), firstSlots->second.moments.count());
  EXPECT_EQ(slots->second.moments.mean(), firstSlots->second.moments.mean());
}

TEST(WorkQueue, WorkerCrashRequeuesTheLeaseAndReproducesTheBytes) {
  const std::string dir = testing::TempDir() + "wq_crash";
  std::filesystem::remove_all(dir);
  const SweepSpec spec = tinySweep("wq_crash");
  std::string err;

  // Reference run, no faults.
  WorkQueueOptions clean;
  clean.workers = 2;
  clean.outDir = dir + "/clean";
  WorkQueueCampaign ref;
  ASSERT_TRUE(runCampaignWorkQueue(spec, clean, ref, err)) << err;
  std::string refReport;
  ASSERT_TRUE(writeWorkQueueCampaignReport(ref, clean.outDir, clean.outDir, refReport, err))
      << err;

  // Faulted run: the worker holding cell 1's first lease is SIGKILLed
  // right after it acknowledges, mid-cell.
  WorkQueueOptions faulty = clean;
  faulty.outDir = dir + "/faulty";
  faulty.faultKillCell = 1;
  WorkQueueCampaign run;
  ASSERT_TRUE(runCampaignWorkQueue(spec, faulty, run, err)) << err;
  EXPECT_GE(run.workerDeaths, 1u);
  EXPECT_GE(run.requeues, 1u);
  EXPECT_EQ(run.leases, 4u);  // 3 cells + 1 re-lease of the killed cell
  EXPECT_EQ(run.failures(), 0);
  ASSERT_EQ(run.cells.size(), 3u);
  std::string report;
  ASSERT_TRUE(writeWorkQueueCampaignReport(run, faulty.outDir, faulty.outDir, report, err))
      << err;

  // The crash must be invisible in the output: every cell file and the
  // whole report byte-match the unharmed run after wall canonicalization.
  for (const CellRecord& rec : run.cells) {
    EXPECT_EQ(canonicalJsonBytes(cellFilePath(faulty.outDir, spec.name, rec.cell.index)),
              canonicalJsonBytes(cellFilePath(clean.outDir, spec.name, rec.cell.index)))
        << "cell " << rec.cell.index;
  }
  EXPECT_EQ(canonicalJsonBytes(report), canonicalJsonBytes(refReport));
}

TEST(WorkQueue, ComposesWithSharding) {
  const std::string dir = testing::TempDir() + "wq_shard";
  std::filesystem::remove_all(dir);
  const SweepSpec spec = tinySweep("wq_shard");
  std::string err;

  WorkQueueOptions wq;
  wq.workers = 2;
  wq.outDir = dir;
  wq.shardIndex = 0;
  wq.shardCount = 2;
  WorkQueueCampaign shard0;
  ASSERT_TRUE(runCampaignWorkQueue(spec, wq, shard0, err)) << err;
  // 3 cells round-robin over 2 shards: shard 0 holds cells 0 and 2.
  ASSERT_EQ(shard0.cells.size(), 2u);
  EXPECT_EQ(shard0.totalCells, 3);
  EXPECT_EQ(shard0.cells[0].cell.index, 0);
  EXPECT_EQ(shard0.cells[1].cell.index, 2);
  EXPECT_EQ(shard0.leases, 2u);
}

}  // namespace
}  // namespace campaign

// ------------------------------------------------ bench-rows sweep_check

namespace {

Json benchReport(double wall, double speedup, double cells) {
  Json row = Json::object();
  row.set("config", Json("w8"));
  row.set("mode", Json("queue"));
  row.set("cells", Json(cells));
  row.set("makespan_wall_sec", Json(wall));
  row.set("speedup", Json(speedup));
  Json rows = Json::array();
  rows.push_back(row);
  Json report = Json::object();
  report.set("name", Json("campaign"));
  report.set("rows", rows);
  return report;
}

TEST(SweepCheckBenchRows, IdenticalReportsPass) {
  const Json base = benchReport(1.0, 2.5, 24.0);
  const SweepCheckResult r = compareBenchRows(base, base, SweepCheckOptions{});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.cellsCompared, 1);
  EXPECT_EQ(r.metricsCompared, 3);
}

TEST(SweepCheckBenchRows, WallColumnsGateOnlyRegressions) {
  SweepCheckOptions opts;
  opts.wallTol = 0.5;
  // Faster is always fine; 2x slower is a violation at 50% tolerance.
  EXPECT_TRUE(compareBenchRows(benchReport(1.0, 2.5, 24.0), benchReport(0.2, 2.5, 24.0), opts)
                  .ok());
  EXPECT_FALSE(compareBenchRows(benchReport(1.0, 2.5, 24.0), benchReport(2.0, 2.5, 24.0), opts)
                   .ok());
}

TEST(SweepCheckBenchRows, SpeedupColumnsAreAFloor) {
  SweepCheckOptions opts;
  opts.wallTol = 0.5;
  // A higher speedup never fails; a drop beyond tolerance does — a
  // slower speedup IS a perf regression even though bigger is better.
  EXPECT_TRUE(compareBenchRows(benchReport(1.0, 2.5, 24.0), benchReport(1.0, 9.0, 24.0), opts)
                  .ok());
  EXPECT_FALSE(compareBenchRows(benchReport(1.0, 2.5, 24.0), benchReport(1.0, 1.0, 24.0), opts)
                   .ok());
}

TEST(SweepCheckBenchRows, OtherColumnsDriftAndMissingRowsFail) {
  SweepCheckOptions opts;
  EXPECT_FALSE(compareBenchRows(benchReport(1.0, 2.5, 24.0), benchReport(1.0, 2.5, 25.0), opts)
                   .ok());  // cells drifted

  Json missing = Json::object();
  missing.set("name", Json("campaign"));
  missing.set("rows", Json::array());
  EXPECT_FALSE(compareBenchRows(benchReport(1.0, 2.5, 24.0), missing, opts).ok());
  opts.allowMissing = true;
  // With allowMissing the row is only noted — but then nothing compared,
  // which still fails (an empty comparison must not pass the gate).
  EXPECT_FALSE(compareBenchRows(benchReport(1.0, 2.5, 24.0), missing, opts).ok());
}

}  // namespace
}  // namespace mcs
