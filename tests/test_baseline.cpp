#include <gtest/gtest.h>

#include "test_support.h"

namespace mcs {
namespace {

TEST(Chain, BetaThreshold) {
  EXPECT_NEAR(chainBetaThreshold(3.0), std::pow(2.0, 1.0 / 3.0), 1e-12);
  EXPECT_LT(chainBetaThreshold(4.0), chainBetaThreshold(2.5));
}

TEST(Chain, SingleChannelAtMostOneDescendingSuccess) {
  // The §1 lower-bound instance: at most one *descending* reception per
  // channel per slot, independent of n (see chain.h for the argument).
  const SinrParams p;
  for (const int n : {16, 32, 64}) {
    auto pts = deployExponentialChain(n, 2.0, 0.9);
    Network net(std::move(pts), p);
    const ChainSlotStats stats = chainConcurrency(net, 1, 400, 7);
    EXPECT_LE(stats.maxDescendingSuccesses, 1) << "n=" << n;
    EXPECT_GT(stats.meanSuccesses, 0.0);
  }
}

TEST(Chain, MultipleChannelsMultiplyDescendingSuccesses) {
  const SinrParams p;
  auto pts = deployExponentialChain(32, 2.0, 0.9);
  Network net(std::move(pts), p);
  const ChainSlotStats s1 = chainConcurrency(net, 1, 300, 7);
  const ChainSlotStats s4 = chainConcurrency(net, 4, 300, 7);
  EXPECT_LE(s1.maxDescendingSuccesses, 1);
  EXPECT_LE(s4.maxDescendingSuccesses, 4);
  EXPECT_GT(s4.maxDescendingSuccesses, 1);
  EXPECT_GT(s4.meanDescendingSuccesses, 1.5 * s1.meanDescendingSuccesses);
}

class AlohaSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlohaSeeds, CorrectAggregation) {
  const std::uint64_t seed = GetParam();
  test::BuiltStructure b(350, 1.2, 4, seed);
  Rng rng(seed * 3 + 2);
  std::vector<double> values(static_cast<std::size_t>(b.net.size()));
  for (double& x : values) x = rng.uniform(-10, 10);
  const AggregateRun run = runAlohaAggregation(b.sim, b.s, values, AggKind::Max);
  EXPECT_TRUE(run.delivered);
  const double truth = aggregateGroundTruth(values, AggKind::Max);
  for (NodeId v = 0; v < b.net.size(); ++v) {
    EXPECT_EQ(run.valueAtNode[static_cast<std::size_t>(v)], truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlohaSeeds, ::testing::Values(1u, 2u));

TEST(Aloha, SumExact) {
  test::BuiltStructure b(300, 1.2, 4, 5);
  std::vector<double> ones(static_cast<std::size_t>(b.net.size()), 1.0);
  const AggregateRun run = runAlohaAggregation(b.sim, b.s, ones, AggKind::Sum);
  EXPECT_TRUE(run.delivered);
  EXPECT_NEAR(run.valueAtNode[0], static_cast<double>(b.net.size()), 1e-9);
}

TEST(Aloha, MultiChannelUplinkBeatsSingleChannelOnDenseClusters) {
  // The paper's headline comparison at the cluster level.
  test::BuiltStructure b(900, 0.8, 8, 9);
  std::vector<double> ones(static_cast<std::size_t>(b.net.size()), 1.0);
  const AggregateRun multi = runAggregation(b.sim, b.s, ones, AggKind::Max);
  const AggregateRun single = runAlohaAggregation(b.sim, b.s, ones, AggKind::Max);
  ASSERT_TRUE(multi.delivered);
  ASSERT_TRUE(single.delivered);
  EXPECT_LT(multi.costs.uplink, single.costs.uplink);
}

TEST(Aloha, UplinkDeliversEveryDominatee) {
  test::BuiltStructure b(300, 1.2, 2, 11);
  std::vector<double> ones(static_cast<std::size_t>(b.net.size()), 1.0);
  const AlohaUplinkResult res = alohaClusterUplink(b.sim, b.s.clustering, b.s.tdma, ones,
                                                   b.s.sizeEstimate, AggKind::Sum);
  ASSERT_TRUE(res.allDelivered);
  const auto sizes = test::trueClusterSizes(b.net, b.s.clustering);
  for (const NodeId d : b.s.clustering.dominators) {
    EXPECT_DOUBLE_EQ(res.clusterValue[static_cast<std::size_t>(d)],
                     sizes[static_cast<std::size_t>(d)] + 1.0);
  }
}

}  // namespace
}  // namespace mcs
