#include <gtest/gtest.h>

#include "test_support.h"

namespace mcs {
namespace {

struct InterFixture {
  Network net;
  Simulator sim;
  Clustering cl;
  TdmaSchedule tdma;

  InterFixture(int n, double side, std::uint64_t seed)
      : net(test::makeUniformNetwork(n, side, seed)), sim(net, 2, seed + 3) {
    DominatingSetResult ds = buildDominatingSet(sim);
    cl = std::move(ds.clustering);
    colorClusters(sim, cl);
    tdma = TdmaSchedule::from(cl);
  }
};

TEST(Inter, BackboneConnectedWheneverGraphIs) {
  // R_eps + 2 r_c <= R_{eps/2} makes the dominator overlay inherit
  // connectivity (DESIGN.md §3.2).
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    InterFixture f(350, 1.4, seed);
    if (!f.net.graph().connected()) continue;
    std::vector<Vec2> pts;
    for (const NodeId d : f.cl.dominators) pts.push_back(f.net.position(d));
    const CommGraph bb(pts, f.net.rEpsHalf());
    EXPECT_TRUE(bb.connected()) << "seed " << seed;
  }
}

class GossipSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GossipSeeds, MaxConvergesEverywhere) {
  InterFixture f(350, 1.4, GetParam());
  Rng rng(GetParam() * 11 + 5);
  std::vector<double> initial(static_cast<std::size_t>(f.net.size()), 0.0);
  double truth = -1.0;
  for (const NodeId d : f.cl.dominators) {
    initial[static_cast<std::size_t>(d)] = rng.uniform();
    truth = std::max(truth, initial[static_cast<std::size_t>(d)]);
  }
  const InterResult res = gossipAggregate(f.sim, f.cl, f.tdma, initial, AggKind::Max);
  ASSERT_TRUE(res.converged);
  for (const NodeId d : f.cl.dominators) {
    EXPECT_EQ(res.valueAtDominator[static_cast<std::size_t>(d)], truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GossipSeeds, ::testing::Values(1u, 2u, 3u));

class TreeSumSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeSumSeeds, SumIsExact) {
  InterFixture f(350, 1.4, GetParam());
  Rng rng(GetParam() * 13 + 7);
  std::vector<double> initial(static_cast<std::size_t>(f.net.size()), 0.0);
  double truth = 0.0;
  for (const NodeId d : f.cl.dominators) {
    initial[static_cast<std::size_t>(d)] = std::floor(rng.uniform(0, 100));
    truth += initial[static_cast<std::size_t>(d)];
  }
  const InterResult res = treeAggregate(f.sim, f.cl, f.tdma, initial, AggKind::Sum);
  ASSERT_TRUE(res.converged);
  for (const NodeId d : f.cl.dominators) {
    EXPECT_DOUBLE_EQ(res.valueAtDominator[static_cast<std::size_t>(d)], truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSumSeeds, ::testing::Values(1u, 2u, 3u));

TEST(Inter, SingleDominatorShortCircuits) {
  Rng rng(5);
  auto pts = deployUniformDisk(40, 0.04, rng);
  Network net(std::move(pts), SinrParams{});
  Simulator sim(net, 1, 6);
  DominatingSetResult ds = buildDominatingSet(sim);
  colorClusters(sim, ds.clustering);
  if (ds.clustering.dominators.size() != 1) GTEST_SKIP() << "needs a single cluster";
  const TdmaSchedule tdma = TdmaSchedule::from(ds.clustering);
  std::vector<double> initial(40, 0.0);
  initial[static_cast<std::size_t>(ds.clustering.dominators[0])] = 7.0;
  const InterResult g = gossipAggregate(sim, ds.clustering, tdma, initial, AggKind::Max);
  EXPECT_TRUE(g.converged);
  EXPECT_EQ(g.slots, 0u);
  const InterResult t = treeAggregate(sim, ds.clustering, tdma, initial, AggKind::Sum);
  EXPECT_TRUE(t.converged);
  EXPECT_EQ(t.valueAtDominator[static_cast<std::size_t>(ds.clustering.dominators[0])], 7.0);
}

TEST(Inter, BroadcastReachesAllNodes) {
  InterFixture f(300, 1.2, 9);
  std::vector<double> values(static_cast<std::size_t>(f.net.size()), -1.0);
  for (const NodeId d : f.cl.dominators) values[static_cast<std::size_t>(d)] = 42.0;
  broadcastToClusters(f.sim, f.cl, f.tdma, values, 6);
  int missed = 0;
  for (NodeId v = 0; v < f.net.size(); ++v) {
    if (values[static_cast<std::size_t>(v)] != 42.0) ++missed;
  }
  EXPECT_EQ(missed, 0);
}

TEST(Inter, GossipSlotsScaleWithDiameterNotN) {
  // Corridor networks: doubling the corridor length (diameter) should not
  // blow up gossip cost by more than ~proportionally.
  const auto run = [](double length, int n) {
    Rng rng(31);
    auto pts = deployCorridor(n, length, 0.4, rng);
    Network net(std::move(pts), SinrParams{});
    Simulator sim(net, 2, 32);
    DominatingSetResult ds = buildDominatingSet(sim);
    colorClusters(sim, ds.clustering);
    const TdmaSchedule tdma = TdmaSchedule::from(ds.clustering);
    std::vector<double> initial(static_cast<std::size_t>(n), 0.0);
    for (const NodeId d : ds.clustering.dominators) {
      initial[static_cast<std::size_t>(d)] = d;
    }
    const InterResult res = gossipAggregate(sim, ds.clustering, tdma, initial, AggKind::Max);
    EXPECT_TRUE(res.converged);
    return res.slots;
  };
  const auto s1 = run(3.0, 300);
  const auto s2 = run(6.0, 600);
  EXPECT_LT(s2, s1 * 12);  // roughly linear in D, generous slack
}

TEST(Inter, BackboneDiameterGroundTruth) {
  InterFixture f(300, 1.4, 12);
  const int d = backboneDiameter(f.net, f.cl);
  EXPECT_GE(d, 0);
  EXPECT_LT(d, static_cast<int>(f.cl.dominators.size()));
}

}  // namespace
}  // namespace mcs
